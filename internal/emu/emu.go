// Package emu is the functional EVR simulator. It executes programs
// instruction by instruction, applying an optional post-fetch expander (the
// DISE engine, or the dedicated-decompressor baseline) to every application
// fetch — producing the exact dynamic instruction stream, tagged PC:DISEPC,
// that the cycle-level model in internal/cpu times.
package emu

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// Expander transforms fetched application instructions. A nil *Expansion
// passes the instruction through unchanged. The DISE engine (*core.Engine)
// implements Expander; so does the dedicated decompressor baseline.
type Expander interface {
	Expand(in isa.Inst, pc uint64) *core.Expansion
}

// Errors reported by execution.
var (
	// ErrACFViolation is raised by "sys 3": an ACF detected a violation
	// (e.g. memory fault isolation caught an out-of-segment access).
	ErrACFViolation = errors.New("emu: ACF violation")
	// ErrBudget is raised when the dynamic instruction budget is exhausted.
	ErrBudget = errors.New("emu: instruction budget exhausted")
)

// DynInst is one executed dynamic instruction, annotated with everything the
// timing model needs.
type DynInst struct {
	Inst isa.Inst
	PC   uint64 // byte address; for replacement instructions, the trigger's PC
	Unit int    // application unit index of PC

	// DISEPC is the offset within the replacement sequence; 0 for
	// application instructions (paper §2.1: every dynamic instruction is
	// tagged with a PC:DISEPC pair).
	DISEPC int
	// FromRT marks replacement instructions: they are spliced in after
	// fetch and never access the I-cache.
	FromRT bool
	// IsApp marks the dynamic instruction that stands in for the fetched
	// application instruction (the T.INSN splice or a re-emitted %op form);
	// plain unexpanded instructions are also IsApp.
	IsApp bool
	// SeqLen is the replacement sequence length (trigger instruction only).
	SeqLen int

	// FetchSize is the number of text-image bytes this fetch consumed
	// (application instructions only; 2 for dedicated codewords).
	FetchSize int

	// Stall carries DISE PT/RT miss-handling cycles charged at this
	// instruction (pipeline flush + fixed stall).
	Stall int

	// Control outcome.
	IsBranch   bool // application-level control transfer
	Taken      bool
	Target     uint64 // byte address of the taken target
	Predicted  bool   // eligible for branch prediction (non-trigger replacement branches are not: paper §2.2)
	DiseBranch bool   // moves DISEPC only; taken => restart fetch (mispredict-like)

	// Memory outcome.
	IsLoad  bool
	IsStore bool
	MemAddr uint64
}

// Stats counts dynamic execution events.
type Stats struct {
	AppInsts  int64 // application instructions (incl. triggers)
	ReplInsts int64 // replacement instructions inserted by expansion (excl. trigger copies executed in place)
	Total     int64 // total dynamic instructions executed
	Loads     int64
	Stores    int64
	Branches  int64 // application conditional branches executed
	Taken     int64
}

// Machine is a functional EVR machine.
type Machine struct {
	prog *program.Program
	mem  *Memory
	regs [isa.NumRegs]uint64

	expander Expander

	unit   int // current application unit
	halted bool
	err    error

	// in-flight replacement sequence
	seq      []isa.Inst
	seqTmpl  []core.ReplInst
	seqIdx   int
	seqStall int
	trigPC   uint64
	trigUnit int
	trigger  isa.Inst

	output bytes.Buffer
	budget int64

	Stats Stats
}

// New loads prog into a fresh machine. The data segment is copied to
// DataBase and the stack pointer initialized to StackTop.
func New(prog *program.Program) *Machine {
	m := &Machine{prog: prog, mem: NewMemory(), unit: prog.Entry, budget: 1 << 40}
	m.mem.Load(program.DataBase, prog.Data)
	m.regs[isa.RegSP] = program.StackTop
	return m
}

// SetExpander installs the post-fetch expander (DISE engine or dedicated
// decompressor). It must be set before execution begins.
func (m *Machine) SetExpander(e Expander) { m.expander = e }

// SetBudget limits the number of dynamic instructions executed; exceeding it
// stops the machine with ErrBudget.
func (m *Machine) SetBudget(n int64) { m.budget = n }

// Reg returns register r (dedicated registers included).
func (m *Machine) Reg(r isa.Reg) uint64 {
	if r == isa.RegZero || !r.Valid() {
		return 0
	}
	return m.regs[r]
}

// SetReg writes register r. Writes to the zero register are discarded.
// ACFs use this to initialize dedicated registers (e.g. the legal segment
// identifier in $dr2 for memory fault isolation).
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r == isa.RegZero || !r.Valid() {
		return
	}
	m.regs[r] = v
}

// Mem returns the machine's data memory.
func (m *Machine) Mem() *Memory { return m.mem }

// Program returns the loaded program.
func (m *Machine) Program() *program.Program { return m.prog }

// Output returns everything the program printed via sys.
func (m *Machine) Output() string { return m.output.String() }

// Done reports whether the machine has halted (normally or with error).
func (m *Machine) Done() bool { return m.halted }

// Err returns the termination error, nil after a clean halt.
func (m *Machine) Err() error { return m.err }

// PC returns the current application PC (byte address).
func (m *Machine) PC() uint64 { return m.prog.Addr(m.unit) }

// DISEPC returns the current offset within an in-flight replacement
// sequence, 0 otherwise.
func (m *Machine) DISEPC() int {
	if m.seq != nil {
		return m.seqIdx
	}
	return 0
}

func (m *Machine) stop(err error) {
	m.halted = true
	m.err = err
}

// Step executes one dynamic instruction and returns its record.
// After the machine halts, Step returns ok == false.
func (m *Machine) Step() (DynInst, bool) {
	if m.halted {
		return DynInst{}, false
	}
	if m.Stats.Total >= m.budget {
		m.stop(fmt.Errorf("%w after %d instructions", ErrBudget, m.Stats.Total))
		return DynInst{}, false
	}

	if m.seq != nil {
		return m.stepReplacement()
	}
	return m.stepApplication()
}

// stepApplication fetches, possibly expands, and executes at the current PC.
func (m *Machine) stepApplication() (DynInst, bool) {
	if m.unit < 0 || m.unit >= m.prog.NumUnits() {
		m.stop(fmt.Errorf("emu: PC out of text (unit %d)", m.unit))
		return DynInst{}, false
	}
	in := m.prog.Text[m.unit]
	pc := m.prog.Addr(m.unit)

	if m.expander != nil {
		if exp := m.expander.Expand(in, pc); exp != nil && exp.Insts != nil {
			m.seq = exp.Insts
			m.seqTmpl = exp.Templates
			m.seqIdx = 0
			m.seqStall = exp.Stall
			m.trigPC = pc
			m.trigUnit = m.unit
			m.trigger = in
			return m.stepReplacement()
		} else if exp != nil && exp.Stall > 0 {
			// A PT fill that produced no match still stalled the pipe.
			d := m.exec(in, pc, m.unit)
			d.Stall = exp.Stall
			return d, true
		}
	}
	return m.exec(in, pc, m.unit), true
}

// stepReplacement executes the next instruction of the in-flight sequence.
func (m *Machine) stepReplacement() (DynInst, bool) {
	idx := m.seqIdx
	in := m.seq[idx]
	tmpl := m.seqTmpl[idx]
	// A T.INSN splice or a re-emitted trigger opcode (%op ...) stands in
	// for the application instruction: it counts as one and keeps the
	// trigger's branch-prediction eligibility.
	isTrigger := tmpl.Trigger || tmpl.OpFromTrigger

	d := m.execCommon(in, m.trigPC, m.trigUnit)
	d.DISEPC = idx
	d.FromRT = !tmpl.Trigger
	d.IsApp = isTrigger
	if idx == 0 {
		d.Stall = m.seqStall
		d.SeqLen = len(m.seq)
		d.FetchSize = m.prog.UnitSize(m.trigUnit)
	}
	if !isTrigger {
		m.Stats.ReplInsts++
	} else {
		m.Stats.AppInsts++
	}
	m.Stats.Total++

	if tmpl.DiseBranch {
		// DISE branch: moves the DISEPC only. Taken => fetch restart at the
		// same PC with a new DISEPC (treated as a mispredict by the timing
		// model); targets outside [0,len) fall out of the sequence.
		d.DiseBranch = true
		d.IsBranch = false
		taken := m.condTaken(in)
		d.Taken = taken
		if taken {
			t := int(in.Imm)
			if t >= 0 && t < len(m.seq) {
				m.seqIdx = t
				return d, true
			}
			m.endSequence(m.trigUnit + 1)
			return d, true
		}
		m.advanceSeq()
		return d, true
	}

	// Application-level semantics for this replacement instruction.
	redirect, target := m.applyEffects(in, &d)
	if m.halted {
		return d, false
	}
	// Non-trigger replacement branches are not predicted; they behave as
	// predicted-not-taken (paper §2.2) — the right semantics for embedded
	// checks like MFI's error branch. A branch in the *final* slot of the
	// sequence redirects fetch exactly like a branch fetched at the
	// trigger's PC (the decompression case), so the front end predicts it
	// through the trigger's BTB/gshare entry.
	d.Predicted = d.IsBranch && (isTrigger || idx == len(m.seq)-1)
	if redirect {
		// An application control transfer exits the sequence: the remaining
		// replacement instructions belong to the not-taken path and are
		// squashed (paper §2.1).
		m.endSequence(target)
		return d, true
	}
	m.advanceSeq()
	return d, true
}

func (m *Machine) advanceSeq() {
	m.seqIdx++
	if m.seqIdx >= len(m.seq) {
		m.endSequence(m.trigUnit + 1)
	}
}

func (m *Machine) endSequence(nextUnit int) {
	m.seq, m.seqTmpl = nil, nil
	m.seqIdx, m.seqStall = 0, 0
	m.unit = nextUnit
}

// exec executes a plain application instruction (no expansion in flight).
func (m *Machine) exec(in isa.Inst, pc uint64, unit int) DynInst {
	d := m.execCommon(in, pc, unit)
	d.FetchSize = m.prog.UnitSize(unit)
	d.IsApp = true
	m.Stats.AppInsts++
	m.Stats.Total++
	redirect, target := m.applyEffects(in, &d)
	d.Predicted = d.IsBranch
	if m.halted {
		return d
	}
	if redirect {
		m.unit = target
	} else {
		m.unit = unit + 1
	}
	return d
}

// execCommon fills the common record fields and evaluates data semantics
// that do not redirect control.
func (m *Machine) execCommon(in isa.Inst, pc uint64, unit int) DynInst {
	return DynInst{Inst: in, PC: pc, Unit: unit}
}

// condTaken evaluates a conditional branch condition.
func (m *Machine) condTaken(in isa.Inst) bool {
	v := int64(m.Reg(in.RS))
	switch in.Op {
	case isa.OpBEQ:
		return v == 0
	case isa.OpBNE:
		return v != 0
	case isa.OpBLT:
		return v < 0
	case isa.OpBLE:
		return v <= 0
	case isa.OpBGT:
		return v > 0
	case isa.OpBGE:
		return v >= 0
	case isa.OpBR, isa.OpBSR:
		return true
	}
	return false
}

// applyEffects executes in's architectural semantics, updating d with
// memory/control outcomes. It returns (true, unit) when control transfers.
// PC-relative control is computed against the *trigger's* unit: replacement
// instructions all carry the trigger's PC (paper §2.1).
func (m *Machine) applyEffects(in isa.Inst, d *DynInst) (bool, int) {
	unit := d.Unit
	switch in.Op {
	case isa.OpLDQ, isa.OpLDL:
		addr := m.Reg(in.RS) + uint64(in.Imm)
		d.IsLoad, d.MemAddr = true, addr
		m.Stats.Loads++
		if in.Op == isa.OpLDQ {
			m.SetReg(in.RD, m.mem.Read64(addr))
		} else {
			m.SetReg(in.RD, uint64(int64(int32(m.mem.Read32(addr)))))
		}
	case isa.OpSTQ, isa.OpSTL:
		addr := m.Reg(in.RS) + uint64(in.Imm)
		d.IsStore, d.MemAddr = true, addr
		m.Stats.Stores++
		if in.Op == isa.OpSTQ {
			m.mem.Write64(addr, m.Reg(in.RT))
		} else {
			m.mem.Write32(addr, uint32(m.Reg(in.RT)))
		}
	case isa.OpLDA:
		m.SetReg(in.RD, m.Reg(in.RS)+uint64(in.Imm))
	case isa.OpLDAH:
		m.SetReg(in.RD, m.Reg(in.RS)+uint64(in.Imm)<<16)
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBLE, isa.OpBGT, isa.OpBGE:
		d.IsBranch = true
		m.Stats.Branches++
		t := unit + 1 + int(in.Imm)
		if m.condTaken(in) {
			d.Taken = true
			m.Stats.Taken++
			d.Target = m.unitAddr(t)
			return true, t
		}
	case isa.OpBR, isa.OpBSR:
		d.IsBranch, d.Taken = true, true
		t := unit + 1 + int(in.Imm)
		d.Target = m.unitAddr(t)
		m.SetReg(in.RD, m.prog.Addr(minInt(unit+1, m.prog.NumUnits())))
		return true, t
	case isa.OpJMP, isa.OpJSR, isa.OpRET:
		d.IsBranch, d.Taken = true, true
		target := m.Reg(in.RS)
		d.Target = target
		m.SetReg(in.RD, m.prog.Addr(minInt(unit+1, m.prog.NumUnits())))
		return true, m.jumpUnit(target)
	case isa.OpJEQ, isa.OpJNE:
		d.IsBranch = true
		cond := m.Reg(in.RT)
		if (in.Op == isa.OpJEQ) == (cond == 0) {
			d.Taken = true
			target := m.Reg(in.RS)
			d.Target = target
			return true, m.jumpUnit(target)
		}
	case isa.OpADDQ:
		m.SetReg(in.RD, m.Reg(in.RS)+m.Reg(in.RT))
	case isa.OpSUBQ:
		m.SetReg(in.RD, m.Reg(in.RS)-m.Reg(in.RT))
	case isa.OpMULQ:
		m.SetReg(in.RD, m.Reg(in.RS)*m.Reg(in.RT))
	case isa.OpAND:
		m.SetReg(in.RD, m.Reg(in.RS)&m.Reg(in.RT))
	case isa.OpBIS:
		m.SetReg(in.RD, m.Reg(in.RS)|m.Reg(in.RT))
	case isa.OpXOR:
		m.SetReg(in.RD, m.Reg(in.RS)^m.Reg(in.RT))
	case isa.OpSLL:
		m.SetReg(in.RD, m.Reg(in.RS)<<(m.Reg(in.RT)&63))
	case isa.OpSRL:
		m.SetReg(in.RD, m.Reg(in.RS)>>(m.Reg(in.RT)&63))
	case isa.OpSRA:
		m.SetReg(in.RD, uint64(int64(m.Reg(in.RS))>>(m.Reg(in.RT)&63)))
	case isa.OpCMPEQ:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) == m.Reg(in.RT)))
	case isa.OpCMPLT:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) < int64(m.Reg(in.RT))))
	case isa.OpCMPLE:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) <= int64(m.Reg(in.RT))))
	case isa.OpCMPULT:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) < m.Reg(in.RT)))
	case isa.OpCMPULE:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) <= m.Reg(in.RT)))
	case isa.OpADDQI:
		m.SetReg(in.RD, m.Reg(in.RS)+uint64(in.Imm))
	case isa.OpSUBQI:
		m.SetReg(in.RD, m.Reg(in.RS)-uint64(in.Imm))
	case isa.OpMULQI:
		m.SetReg(in.RD, m.Reg(in.RS)*uint64(in.Imm))
	case isa.OpANDI:
		m.SetReg(in.RD, m.Reg(in.RS)&uint64(in.Imm))
	case isa.OpBISI:
		m.SetReg(in.RD, m.Reg(in.RS)|uint64(in.Imm))
	case isa.OpXORI:
		m.SetReg(in.RD, m.Reg(in.RS)^uint64(in.Imm))
	case isa.OpSLLI:
		m.SetReg(in.RD, m.Reg(in.RS)<<(uint64(in.Imm)&63))
	case isa.OpSRLI:
		m.SetReg(in.RD, m.Reg(in.RS)>>(uint64(in.Imm)&63))
	case isa.OpSRAI:
		m.SetReg(in.RD, uint64(int64(m.Reg(in.RS))>>(uint64(in.Imm)&63)))
	case isa.OpCMPEQI:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) == in.Imm))
	case isa.OpCMPLTI:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) < in.Imm))
	case isa.OpCMPULTI:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) < uint64(in.Imm)))
	case isa.OpHALT:
		m.stop(nil)
	case isa.OpSYS:
		m.sys(in.Imm)
	default:
		if in.Op.Class() == isa.ClassCodeword {
			m.stop(fmt.Errorf("emu: unexpanded codeword %v at unit %d", in, unit))
		} else {
			m.stop(fmt.Errorf("emu: unimplemented %v", in))
		}
	}
	return false, 0
}

// jumpUnit resolves an indirect-jump target. Address 0 is the kernel trap
// vector: ACFs route violations there (paper Figure 1's "error"), and the
// kernel terminates the offender.
func (m *Machine) jumpUnit(target uint64) int {
	if target == 0 {
		m.stop(ErrACFViolation)
		return 0
	}
	t := m.prog.UnitAt(target)
	if t < 0 {
		m.stop(fmt.Errorf("emu: indirect jump to %#x outside text", target))
		return 0
	}
	return t
}

func (m *Machine) unitAddr(t int) uint64 {
	if t >= 0 && t < m.prog.NumUnits() {
		return m.prog.Addr(t)
	}
	return 0
}

func (m *Machine) sys(code int64) {
	switch code {
	case isa.SysPutChar:
		m.output.WriteByte(byte(m.Reg(1)))
	case isa.SysPutInt:
		fmt.Fprintf(&m.output, "%d", int64(m.Reg(1)))
	case isa.SysError:
		m.stop(ErrACFViolation)
	default:
		m.stop(fmt.Errorf("emu: unknown sys code %d", code))
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Run executes until halt, returning the termination error.
func (m *Machine) Run() error {
	for {
		if _, ok := m.Step(); !ok {
			return m.err
		}
	}
}

// InterruptState is the precise state saved when a replacement sequence is
// interrupted: the PC:DISEPC pair (paper §2.1, "Precise state is defined at
// each PC:DISEPC boundary").
type InterruptState struct {
	Unit   int
	DISEPC int
}

// Interrupt abandons any in-flight replacement sequence, returning the
// PC:DISEPC at which execution should resume. (A real OS would also save
// the registers; the emulator's registers are simply left in place.)
func (m *Machine) Interrupt() InterruptState {
	st := InterruptState{Unit: m.unit, DISEPC: 0}
	if m.seq != nil {
		st.Unit = m.trigUnit
		st.DISEPC = m.seqIdx
		m.seq, m.seqTmpl = nil, nil
		m.seqIdx, m.seqStall = 0, 0
	}
	return st
}

// Resume restarts execution at a saved PC:DISEPC: fetch re-reads the
// application instruction at PC; the DISE engine re-expands the replacement
// sequence and skips the first DISEPC instructions.
func (m *Machine) Resume(st InterruptState) error {
	m.unit = st.Unit
	if st.DISEPC == 0 {
		return nil
	}
	if m.expander == nil {
		return fmt.Errorf("emu: resume at DISEPC %d without an expander", st.DISEPC)
	}
	in := m.prog.Text[st.Unit]
	pc := m.prog.Addr(st.Unit)
	exp := m.expander.Expand(in, pc)
	if exp == nil || exp.Insts == nil || st.DISEPC >= len(exp.Insts) {
		return fmt.Errorf("emu: resume at DISEPC %d: no matching expansion", st.DISEPC)
	}
	m.seq = exp.Insts
	m.seqTmpl = exp.Templates
	m.seqIdx = st.DISEPC
	m.seqStall = exp.Stall
	m.trigPC = pc
	m.trigUnit = st.Unit
	m.trigger = in
	return nil
}
