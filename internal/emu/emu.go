// Package emu is the functional EVR simulator. It executes programs
// instruction by instruction, applying an optional post-fetch expander (the
// DISE engine, or the dedicated-decompressor baseline) to every application
// fetch — producing the exact dynamic instruction stream, tagged PC:DISEPC,
// that the cycle-level model in internal/cpu times.
package emu

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// Expander transforms fetched application instructions. A nil *Expansion
// passes the instruction through unchanged. The DISE engine (*core.Engine)
// implements Expander; so does the dedicated decompressor baseline.
type Expander interface {
	Expand(in isa.Inst, pc uint64) *core.Expansion
}

// Errors reported by execution. Both are *Trap members of the typed trap
// hierarchy: use errors.Is against them (or errors.As to a *Trap) — never
// pointer equality — to classify a termination error.
var (
	// ErrACFViolation matches any trap raised by an ACF check (e.g. memory
	// fault isolation catching an out-of-segment access via "sys 3" or a
	// jump to the kernel trap vector), including refined kinds such as
	// TrapOutOfSegment.
	ErrACFViolation = &Trap{Kind: TrapACFViolation, ACF: true, Detail: "ACF violation"}
	// ErrBudget matches the trap raised when the dynamic instruction budget
	// is exhausted.
	ErrBudget = &Trap{Kind: TrapBudget, Detail: "instruction budget exhausted"}
)

// DynInst is one executed dynamic instruction, annotated with everything the
// timing model needs.
type DynInst struct {
	Inst isa.Inst
	PC   uint64 // byte address; for replacement instructions, the trigger's PC
	Unit int    // application unit index of PC

	// DISEPC is the offset within the replacement sequence; 0 for
	// application instructions (paper §2.1: every dynamic instruction is
	// tagged with a PC:DISEPC pair).
	DISEPC int
	// FromRT marks replacement instructions: they are spliced in after
	// fetch and never access the I-cache.
	FromRT bool
	// IsApp marks the dynamic instruction that stands in for the fetched
	// application instruction (the T.INSN splice or a re-emitted %op form);
	// plain unexpanded instructions are also IsApp.
	IsApp bool
	// SeqLen is the replacement sequence length (trigger instruction only).
	SeqLen int

	// FetchSize is the number of text-image bytes this fetch consumed
	// (application instructions only; 2 for dedicated codewords).
	FetchSize int

	// Stall carries DISE PT/RT miss-handling cycles charged at this
	// instruction (pipeline flush + fixed stall).
	Stall int

	// PTMiss/RTMiss/Composed record the DISE table events behind Stall: a
	// pattern-table fill, a replacement-table miss, and whether the RT
	// refill invoked the composing handler. The events depend only on the
	// fetch stream and the table geometry — never on the per-event
	// penalties — so a recorded trace can rebuild Stall under any penalty
	// assignment (Stall = PTMiss·miss + RTMiss·(Composed ? compose : miss)).
	PTMiss   bool
	RTMiss   bool
	Composed bool

	// Control outcome.
	IsBranch   bool // application-level control transfer
	Taken      bool
	Target     uint64 // byte address of the taken target
	Predicted  bool   // eligible for branch prediction (non-trigger replacement branches are not: paper §2.2)
	DiseBranch bool   // moves DISEPC only; taken => restart fetch (mispredict-like)

	// Memory outcome.
	IsLoad  bool
	IsStore bool
	MemAddr uint64
}

// Stats counts dynamic execution events.
type Stats struct {
	AppInsts  int64 // application instructions (incl. triggers)
	ReplInsts int64 // replacement instructions inserted by expansion (excl. trigger copies executed in place)
	Total     int64 // total dynamic instructions executed
	Loads     int64
	Stores    int64
	Branches  int64 // application conditional branches executed
	Taken     int64

	// TextWrites counts stores that landed inside the text image
	// (self-modifying code); Redecodes counts the predecoded units such
	// writes forced back through the decoder.
	TextWrites int64
	Redecodes  int64
}

// unitInfo is one predecoded text unit: the fetch hot path reads this flat
// record instead of re-deriving instruction, address and size from the
// program on every fetch. The encoded image word is kept so that a store
// into the text segment can patch the affected bytes and re-decode —
// self-modifying code invalidates the predecoded form instead of being
// silently ignored.
type unitInfo struct {
	inst isa.Inst
	addr uint64
	word uint32 // little-endian image word, valid only when enc
	size uint8
	enc  bool // inst round-trips through the 32-bit encoding
}

// Machine is a functional EVR machine.
type Machine struct {
	prog *program.Program
	mem  *Memory
	regs [isa.NumRegs]uint64

	// units is the per-machine predecoded text cache (one entry per unit),
	// built once at load time and invalidated unit-wise by stores into the
	// text image. textEnd bounds the image so the store hot path can reject
	// data-segment addresses with one compare.
	units   []unitInfo
	textEnd uint64

	expander Expander

	unit        int // current application unit
	halted      bool
	err         error
	strictAlign bool

	// in-flight replacement sequence
	seq      []isa.Inst
	seqTmpl  []core.ReplInst
	seqIdx   int
	seqStall int
	seqPT    bool // expansion took a PT fill
	seqRT    bool // expansion took an RT miss
	seqComp  bool // the RT refill invoked the composer
	trigPC   uint64
	trigUnit int
	trigger  isa.Inst

	output bytes.Buffer
	budget int64

	// trans is the dynamic-translation state: superblock cache, per-unit
	// heat counters, and invalidation bookkeeping (translate.go).
	trans transState

	Stats Stats
}

// New loads prog into a fresh machine. The data segment is copied to
// DataBase, the stack pointer initialized to StackTop, and the text segment
// predecoded into the per-machine unit cache.
func New(prog *program.Program) *Machine {
	m := &Machine{prog: prog, mem: NewMemory(), unit: prog.Entry, budget: 1 << 40}
	m.mem.Load(program.DataBase, prog.Data)
	m.regs[isa.RegSP] = program.StackTop
	m.units = make([]unitInfo, prog.NumUnits())
	for i := range m.units {
		u := &m.units[i]
		u.inst = prog.Text[i]
		u.addr = prog.Addr(i)
		u.size = uint8(prog.UnitSize(i))
		if u.size == isa.InstBytes {
			if w, err := isa.Encode(u.inst); err == nil {
				u.word, u.enc = w, true
			}
		}
	}
	m.textEnd = prog.Addr(prog.NumUnits())
	m.trans.mode = transDefaultMode
	m.trans.threshold = thresholdFor(transDefaultMode, transDefaultThreshold)
	m.transSetup()
	return m
}

// SetExpander installs the post-fetch expander (DISE engine or dedicated
// decompressor). It must be set before execution begins.
func (m *Machine) SetExpander(e Expander) {
	m.expander = e
	m.transSetup()
}

// SetBudget limits the number of dynamic instructions executed; exceeding it
// stops the machine with ErrBudget.
func (m *Machine) SetBudget(n int64) { m.budget = n }

// SetStrictAlign enables natural-alignment checking for data accesses:
// a misaligned load or store raises TrapUnaligned instead of executing.
// Off by default (EVR memory is byte-addressed and alignment-free), it turns
// corrupted-address accesses into observable trap events for fault campaigns.
func (m *Machine) SetStrictAlign(on bool) { m.strictAlign = on }

// Reg returns register r (dedicated registers included).
func (m *Machine) Reg(r isa.Reg) uint64 {
	if r == isa.RegZero || !r.Valid() {
		return 0
	}
	return m.regs[r]
}

// SetReg writes register r. Writes to the zero register are discarded.
// ACFs use this to initialize dedicated registers (e.g. the legal segment
// identifier in $dr2 for memory fault isolation).
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r == isa.RegZero || !r.Valid() {
		return
	}
	m.regs[r] = v
}

// RegFile returns a snapshot of the full register file — the architectural
// registers followed by the DISE dedicated registers, with the zero register
// pinned to 0. The conformance harness diffs whole snapshots between runs.
func (m *Machine) RegFile() [isa.NumRegs]uint64 {
	regs := m.regs
	regs[isa.RegZero] = 0
	return regs
}

// Mem returns the machine's data memory.
func (m *Machine) Mem() *Memory { return m.mem }

// Program returns the loaded program.
func (m *Machine) Program() *program.Program { return m.prog }

// Output returns everything the program printed via sys.
func (m *Machine) Output() string { return m.output.String() }

// Done reports whether the machine has halted (normally or with error).
func (m *Machine) Done() bool { return m.halted }

// Err returns the termination error, nil after a clean halt.
func (m *Machine) Err() error { return m.err }

// PC returns the current application PC (byte address), or 0 if the PC has
// run off the text image (the next Step will raise TrapPCOutOfText).
func (m *Machine) PC() uint64 {
	if m.unit < 0 || m.unit >= m.prog.NumUnits() {
		return 0
	}
	return m.prog.Addr(m.unit)
}

// InReplacement reports whether a replacement sequence is in flight.
func (m *Machine) InReplacement() bool { return m.seq != nil }

// NextInst returns the application instruction the machine will fetch next,
// when it sits at an application-stream boundary (running, no replacement
// sequence in flight, PC inside text). Fault injectors use it to time
// corruption relative to a specific upcoming instruction.
func (m *Machine) NextInst() (isa.Inst, bool) {
	if m.halted || m.seq != nil || m.unit < 0 || m.unit >= len(m.units) {
		return isa.Inst{}, false
	}
	return m.units[m.unit].inst, true
}

// DISEPC returns the current offset within an in-flight replacement
// sequence, 0 otherwise.
func (m *Machine) DISEPC() int {
	if m.seq != nil {
		return m.seqIdx
	}
	return 0
}

func (m *Machine) stop(err error) {
	m.halted = true
	m.err = err
}

// trap builds a precise trap at the current PC:DISEPC.
func (m *Machine) trap(kind TrapKind, addr uint64, detail string) *Trap {
	return &Trap{Kind: kind, PC: m.PC(), DISEPC: m.DISEPC(), Addr: addr, Detail: detail}
}

// acfTrap classifies an ACF-raised violation (sys 3, or a jump to the kernel
// trap vector at address 0). When the violation fires inside a replacement
// sequence guarding a memory or jump trigger — the MFI shapes — the trap is
// refined to TrapOutOfSegment and records the faulting effective address the
// check rejected; otherwise it stays the generic TrapACFViolation.
func (m *Machine) acfTrap() *Trap {
	t := m.trap(TrapACFViolation, 0, "")
	t.ACF = true
	if m.seq == nil {
		return t
	}
	trig := m.trigger
	switch {
	case trig.Op.IsMem():
		t.Kind = TrapOutOfSegment
		t.Addr = m.Reg(trig.RS) + uint64(trig.Imm)
	case trig.Op.Class() == isa.ClassJump:
		t.Kind = TrapOutOfSegment
		t.Addr = m.Reg(trig.RS)
	}
	return t
}

// Step executes one dynamic instruction and returns its record.
// After the machine halts, Step returns ok == false.
func (m *Machine) Step() (DynInst, bool) {
	var d DynInst
	ok := m.StepInto(&d)
	return d, ok
}

// StepInto executes one dynamic instruction into *d, which is fully
// overwritten. It is the allocation-free form of Step: the timing model
// reuses one DynInst across the whole run instead of copying a fresh record
// out of every step. After the machine halts, StepInto returns false and
// leaves *d zeroed.
func (m *Machine) StepInto(d *DynInst) bool {
	*d = DynInst{}
	if m.halted {
		return false
	}
	if m.Stats.Total >= m.budget {
		m.stop(m.trap(TrapBudget, 0, fmt.Sprintf("budget exhausted after %d instructions", m.Stats.Total)))
		return false
	}

	if m.seq != nil {
		return m.stepReplacement(d)
	}
	return m.stepApplication(d)
}

// stepApplication fetches, possibly expands, and executes at the current PC.
func (m *Machine) stepApplication(d *DynInst) bool {
	if m.unit < 0 || m.unit >= len(m.units) {
		m.stop(m.trap(TrapPCOutOfText, 0, fmt.Sprintf("sequential fetch ran off text (unit %d)", m.unit)))
		return false
	}
	u := &m.units[m.unit]
	in := u.inst
	pc := u.addr

	if m.expander != nil {
		if exp := m.expander.Expand(in, pc); exp != nil && exp.Insts != nil {
			if len(exp.Insts) == 0 || len(exp.Templates) != len(exp.Insts) {
				// A structurally broken expansion (e.g. a corrupted RT entry)
				// is an architectural event, not a host crash.
				m.stop(&Trap{Kind: TrapRTCorrupt, PC: pc,
					Detail: fmt.Sprintf("malformed expansion: %d insts, %d templates", len(exp.Insts), len(exp.Templates))})
				return false
			}
			m.seq = exp.Insts
			m.seqTmpl = exp.Templates
			m.seqIdx = 0
			m.seqStall = exp.Stall
			m.seqPT, m.seqRT, m.seqComp = exp.PTMiss, exp.RTMiss, exp.Composed
			m.trigPC = pc
			m.trigUnit = m.unit
			m.trigger = in
			return m.stepReplacement(d)
		} else if exp != nil && exp.Stall > 0 {
			// A PT fill that produced no match still stalled the pipe.
			m.exec(d, in, pc, m.unit)
			d.Stall = exp.Stall
			d.PTMiss, d.RTMiss, d.Composed = exp.PTMiss, exp.RTMiss, exp.Composed
			return true
		}
	}
	m.exec(d, in, pc, m.unit)
	return true
}

// stepReplacement executes the next instruction of the in-flight sequence.
func (m *Machine) stepReplacement(d *DynInst) bool {
	idx := m.seqIdx
	in := m.seq[idx]
	tmpl := m.seqTmpl[idx]
	if !in.Op.Valid() {
		// A corrupted RT entry delivered garbage into the replacement stream.
		kind := TrapRTCorrupt
		if tmpl.Trigger || tmpl.OpFromTrigger {
			// The slot standing in for the fetched instruction: the corruption
			// came in through fetch, so it decodes as an illegal instruction.
			kind = TrapIllegalInst
		}
		m.stop(&Trap{Kind: kind, PC: m.trigPC, DISEPC: idx,
			Detail: fmt.Sprintf("invalid opcode %v in replacement sequence", in.Op)})
		*d = DynInst{}
		return false
	}
	// A T.INSN splice or a re-emitted trigger opcode (%op ...) stands in
	// for the application instruction: it counts as one and keeps the
	// trigger's branch-prediction eligibility.
	isTrigger := tmpl.Trigger || tmpl.OpFromTrigger

	d.Inst, d.PC, d.Unit = in, m.trigPC, m.trigUnit
	d.DISEPC = idx
	d.FromRT = !tmpl.Trigger
	d.IsApp = isTrigger
	if idx == 0 {
		d.Stall = m.seqStall
		d.PTMiss, d.RTMiss, d.Composed = m.seqPT, m.seqRT, m.seqComp
		d.SeqLen = len(m.seq)
		d.FetchSize = int(m.units[m.trigUnit].size)
	}
	if !isTrigger {
		m.Stats.ReplInsts++
	} else {
		m.Stats.AppInsts++
	}
	m.Stats.Total++

	if tmpl.DiseBranch {
		// DISE branch: moves the DISEPC only. Taken => fetch restart at the
		// same PC with a new DISEPC (treated as a mispredict by the timing
		// model); targets outside [0,len) fall out of the sequence.
		d.DiseBranch = true
		d.IsBranch = false
		taken := m.condTaken(in)
		d.Taken = taken
		if taken {
			t := int(in.Imm)
			if t >= 0 && t < len(m.seq) {
				m.seqIdx = t
				return true
			}
			m.endSequence(m.trigUnit + 1)
			return true
		}
		m.advanceSeq()
		return true
	}

	// Application-level semantics for this replacement instruction.
	redirect, target := m.applyEffects(in, d)
	if m.halted {
		return false
	}
	// Non-trigger replacement branches are not predicted; they behave as
	// predicted-not-taken (paper §2.2) — the right semantics for embedded
	// checks like MFI's error branch. A branch in the *final* slot of the
	// sequence redirects fetch exactly like a branch fetched at the
	// trigger's PC (the decompression case), so the front end predicts it
	// through the trigger's BTB/gshare entry.
	d.Predicted = d.IsBranch && (isTrigger || idx == len(m.seq)-1)
	if redirect {
		// An application control transfer exits the sequence: the remaining
		// replacement instructions belong to the not-taken path and are
		// squashed (paper §2.1).
		m.endSequence(target)
		return true
	}
	m.advanceSeq()
	return true
}

func (m *Machine) advanceSeq() {
	m.seqIdx++
	if m.seqIdx >= len(m.seq) {
		m.endSequence(m.trigUnit + 1)
	}
}

func (m *Machine) endSequence(nextUnit int) {
	m.seq, m.seqTmpl = nil, nil
	m.seqIdx, m.seqStall = 0, 0
	m.seqPT, m.seqRT, m.seqComp = false, false, false
	m.unit = nextUnit
}

// exec executes a plain application instruction (no expansion in flight).
func (m *Machine) exec(d *DynInst, in isa.Inst, pc uint64, unit int) {
	d.Inst, d.PC, d.Unit = in, pc, unit
	d.FetchSize = int(m.units[unit].size)
	d.IsApp = true
	m.Stats.AppInsts++
	m.Stats.Total++
	redirect, target := m.applyEffects(in, d)
	d.Predicted = d.IsBranch
	if m.halted {
		return
	}
	if redirect {
		m.unit = target
	} else {
		m.unit = unit + 1
	}
}

// condTaken evaluates a conditional branch condition.
func (m *Machine) condTaken(in isa.Inst) bool {
	v := int64(m.Reg(in.RS))
	switch in.Op {
	case isa.OpBEQ:
		return v == 0
	case isa.OpBNE:
		return v != 0
	case isa.OpBLT:
		return v < 0
	case isa.OpBLE:
		return v <= 0
	case isa.OpBGT:
		return v > 0
	case isa.OpBGE:
		return v >= 0
	case isa.OpBR, isa.OpBSR:
		return true
	}
	return false
}

// applyEffects executes in's architectural semantics, updating d with
// memory/control outcomes. It returns (true, unit) when control transfers.
// PC-relative control is computed against the *trigger's* unit: replacement
// instructions all carry the trigger's PC (paper §2.1).
func (m *Machine) applyEffects(in isa.Inst, d *DynInst) (bool, int) {
	unit := d.Unit
	switch in.Op {
	case isa.OpLDQ, isa.OpLDL:
		addr := m.Reg(in.RS) + uint64(in.Imm)
		d.IsLoad, d.MemAddr = true, addr
		m.Stats.Loads++
		if !m.alignOK(in.Op, addr) {
			return false, 0
		}
		if in.Op == isa.OpLDQ {
			m.SetReg(in.RD, m.mem.Read64(addr))
		} else {
			m.SetReg(in.RD, uint64(int64(int32(m.mem.Read32(addr)))))
		}
	case isa.OpSTQ, isa.OpSTL:
		addr := m.Reg(in.RS) + uint64(in.Imm)
		d.IsStore, d.MemAddr = true, addr
		m.Stats.Stores++
		if !m.alignOK(in.Op, addr) {
			return false, 0
		}
		if in.Op == isa.OpSTQ {
			m.mem.Write64(addr, m.Reg(in.RT))
			if addr < m.textEnd {
				m.textStore(addr, 8)
			}
		} else {
			m.mem.Write32(addr, uint32(m.Reg(in.RT)))
			if addr < m.textEnd {
				m.textStore(addr, 4)
			}
		}
	case isa.OpLDA:
		m.SetReg(in.RD, m.Reg(in.RS)+uint64(in.Imm))
	case isa.OpLDAH:
		m.SetReg(in.RD, m.Reg(in.RS)+uint64(in.Imm)<<16)
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBLE, isa.OpBGT, isa.OpBGE:
		d.IsBranch = true
		m.Stats.Branches++
		t := unit + 1 + int(in.Imm)
		if m.condTaken(in) {
			d.Taken = true
			m.Stats.Taken++
			d.Target = m.unitAddr(t)
			return true, t
		}
	case isa.OpBR, isa.OpBSR:
		d.IsBranch, d.Taken = true, true
		t := unit + 1 + int(in.Imm)
		d.Target = m.unitAddr(t)
		m.SetReg(in.RD, m.prog.Addr(minInt(unit+1, m.prog.NumUnits())))
		return true, t
	case isa.OpJMP, isa.OpJSR, isa.OpRET:
		d.IsBranch, d.Taken = true, true
		target := m.Reg(in.RS)
		d.Target = target
		m.SetReg(in.RD, m.prog.Addr(minInt(unit+1, m.prog.NumUnits())))
		return true, m.jumpUnit(target)
	case isa.OpJEQ, isa.OpJNE:
		d.IsBranch = true
		cond := m.Reg(in.RT)
		if (in.Op == isa.OpJEQ) == (cond == 0) {
			d.Taken = true
			target := m.Reg(in.RS)
			d.Target = target
			return true, m.jumpUnit(target)
		}
	case isa.OpADDQ:
		m.SetReg(in.RD, m.Reg(in.RS)+m.Reg(in.RT))
	case isa.OpSUBQ:
		m.SetReg(in.RD, m.Reg(in.RS)-m.Reg(in.RT))
	case isa.OpMULQ:
		m.SetReg(in.RD, m.Reg(in.RS)*m.Reg(in.RT))
	case isa.OpAND:
		m.SetReg(in.RD, m.Reg(in.RS)&m.Reg(in.RT))
	case isa.OpBIS:
		m.SetReg(in.RD, m.Reg(in.RS)|m.Reg(in.RT))
	case isa.OpXOR:
		m.SetReg(in.RD, m.Reg(in.RS)^m.Reg(in.RT))
	case isa.OpSLL:
		m.SetReg(in.RD, m.Reg(in.RS)<<(m.Reg(in.RT)&63))
	case isa.OpSRL:
		m.SetReg(in.RD, m.Reg(in.RS)>>(m.Reg(in.RT)&63))
	case isa.OpSRA:
		m.SetReg(in.RD, uint64(int64(m.Reg(in.RS))>>(m.Reg(in.RT)&63)))
	case isa.OpCMPEQ:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) == m.Reg(in.RT)))
	case isa.OpCMPLT:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) < int64(m.Reg(in.RT))))
	case isa.OpCMPLE:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) <= int64(m.Reg(in.RT))))
	case isa.OpCMPULT:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) < m.Reg(in.RT)))
	case isa.OpCMPULE:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) <= m.Reg(in.RT)))
	case isa.OpADDQI:
		m.SetReg(in.RD, m.Reg(in.RS)+uint64(in.Imm))
	case isa.OpSUBQI:
		m.SetReg(in.RD, m.Reg(in.RS)-uint64(in.Imm))
	case isa.OpMULQI:
		m.SetReg(in.RD, m.Reg(in.RS)*uint64(in.Imm))
	case isa.OpANDI:
		m.SetReg(in.RD, m.Reg(in.RS)&uint64(in.Imm))
	case isa.OpBISI:
		m.SetReg(in.RD, m.Reg(in.RS)|uint64(in.Imm))
	case isa.OpXORI:
		m.SetReg(in.RD, m.Reg(in.RS)^uint64(in.Imm))
	case isa.OpSLLI:
		m.SetReg(in.RD, m.Reg(in.RS)<<(uint64(in.Imm)&63))
	case isa.OpSRLI:
		m.SetReg(in.RD, m.Reg(in.RS)>>(uint64(in.Imm)&63))
	case isa.OpSRAI:
		m.SetReg(in.RD, uint64(int64(m.Reg(in.RS))>>(uint64(in.Imm)&63)))
	case isa.OpCMPEQI:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) == in.Imm))
	case isa.OpCMPLTI:
		m.SetReg(in.RD, b2u(int64(m.Reg(in.RS)) < in.Imm))
	case isa.OpCMPULTI:
		m.SetReg(in.RD, b2u(m.Reg(in.RS) < uint64(in.Imm)))
	case isa.OpHALT:
		m.stop(nil)
	case isa.OpSYS:
		m.sys(in.Imm)
	default:
		if in.Op.Class() == isa.ClassCodeword {
			m.stop(m.trap(TrapBadCodeword, 0, fmt.Sprintf("unexpanded codeword %v at unit %d", in, unit)))
		} else {
			m.stop(m.trap(TrapIllegalInst, 0, fmt.Sprintf("undefined or unimplemented instruction %v", in)))
		}
	}
	return false, 0
}

// textStore invalidates predecoded units overlapped by a store into
// [addr, addr+n). The stored bytes (already written to data memory) are
// patched into each affected unit's kept image word and the word is decoded
// again; a word that no longer decodes becomes OpInvalid and raises
// TrapIllegalInst if it is ever fetched. Units whose decoded form does not
// round-trip through the 32-bit encoding (dedicated-decompressor 2-byte
// codewords, synthetic instructions) keep their original decoding: their
// image bytes are not authoritative, so there is nothing coherent to patch.
func (m *Machine) textStore(addr, n uint64) {
	lo, hi := addr, addr+n
	if lo < program.TextBase {
		lo = program.TextBase
	}
	if hi > m.textEnd {
		hi = m.textEnd
	}
	if lo >= hi {
		return
	}
	m.Stats.TextWrites++
	for a := lo; a < hi; {
		i := m.prog.UnitAt(a)
		if i < 0 {
			return
		}
		u := &m.units[i]
		if u.enc {
			var w [4]byte
			binary.LittleEndian.PutUint32(w[:], u.word)
			for b := uint64(0); b < uint64(u.size); b++ {
				if ba := u.addr + b; ba >= addr && ba < addr+n {
					w[b] = m.mem.LoadByte(ba)
				}
			}
			u.word = binary.LittleEndian.Uint32(w[:])
			if in, err := isa.Decode(u.word); err == nil {
				u.inst = in
			} else {
				u.inst = isa.Inst{Op: isa.OpInvalid}
			}
			m.Stats.Redecodes++
			m.transInvalidate(i)
		}
		a = u.addr + uint64(u.size)
	}
}

// alignOK checks natural alignment under SetStrictAlign, raising
// TrapUnaligned on a misaligned access. It always passes when strict
// alignment is off.
func (m *Machine) alignOK(op isa.Opcode, addr uint64) bool {
	if !m.strictAlign {
		return true
	}
	var mask uint64 = 7 // LDQ/STQ: 8-byte
	if op == isa.OpLDL || op == isa.OpSTL {
		mask = 3
	}
	if addr&mask != 0 {
		m.stop(m.trap(TrapUnaligned, addr, fmt.Sprintf("misaligned %v", op)))
		return false
	}
	return true
}

// jumpUnit resolves an indirect-jump target. Address 0 is the kernel trap
// vector: ACFs route violations there (paper Figure 1's "error"), and the
// kernel terminates the offender.
func (m *Machine) jumpUnit(target uint64) int {
	if target == 0 {
		m.stop(m.acfTrap())
		return 0
	}
	t := m.prog.UnitAt(target)
	if t < 0 {
		m.stop(m.trap(TrapOutOfSegment, target, "indirect jump outside text"))
		return 0
	}
	return t
}

func (m *Machine) unitAddr(t int) uint64 {
	if t >= 0 && t < m.prog.NumUnits() {
		return m.prog.Addr(t)
	}
	return 0
}

func (m *Machine) sys(code int64) {
	switch code {
	case isa.SysPutChar:
		m.output.WriteByte(byte(m.Reg(1)))
	case isa.SysPutInt:
		fmt.Fprintf(&m.output, "%d", int64(m.Reg(1)))
	case isa.SysError:
		m.stop(m.acfTrap())
	default:
		m.stop(m.trap(TrapBadSyscall, 0, fmt.Sprintf("unknown sys code %d", code)))
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Run executes until halt, returning the termination error.
func (m *Machine) Run() error {
	if m.trans.enabled {
		m.runSpan(1 << 62)
		return m.err
	}
	var d DynInst
	for m.StepInto(&d) {
	}
	return m.err
}

// cancelStride is how many dynamic instructions the context-aware step
// loops execute between cancellation checks: coarse enough to keep the hot
// path free of per-instruction synchronization, fine enough that a
// cancelled run stops within microseconds.
const cancelStride = 1 << 12

// RunContext executes until halt or until ctx is cancelled, checking the
// context once every cancelStride dynamic instructions. A cancelled run
// stops the machine with a TrapCancelled carrying the context error as its
// cause, so errors.Is(err, context.DeadlineExceeded) classifies timeouts.
func (m *Machine) RunContext(ctx context.Context) error {
	if ctx == nil {
		return m.Run()
	}
	done := ctx.Done()
	if m.trans.enabled {
		for {
			m.runSpan(m.Stats.Total + cancelStride)
			if m.halted {
				return m.err
			}
			select {
			case <-done:
				t := m.trap(TrapCancelled, 0, "execution cancelled")
				t.Cause = context.Cause(ctx)
				m.stop(t)
				return m.err
			default:
			}
		}
	}
	var d DynInst
	for {
		for i := 0; i < cancelStride; i++ {
			if !m.StepInto(&d) {
				return m.err
			}
		}
		select {
		case <-done:
			t := m.trap(TrapCancelled, 0, "execution cancelled")
			t.Cause = context.Cause(ctx)
			m.stop(t)
			return m.err
		default:
		}
	}
}

// InterruptState is the precise state saved when a replacement sequence is
// interrupted: the PC:DISEPC pair (paper §2.1, "Precise state is defined at
// each PC:DISEPC boundary").
type InterruptState struct {
	Unit   int
	DISEPC int
}

// Interrupt abandons any in-flight replacement sequence, returning the
// PC:DISEPC at which execution should resume. (A real OS would also save
// the registers; the emulator's registers are simply left in place.)
func (m *Machine) Interrupt() InterruptState {
	st := InterruptState{Unit: m.unit, DISEPC: 0}
	if m.seq != nil {
		st.Unit = m.trigUnit
		st.DISEPC = m.seqIdx
		m.seq, m.seqTmpl = nil, nil
		m.seqIdx, m.seqStall = 0, 0
		m.seqPT, m.seqRT, m.seqComp = false, false, false
	}
	return st
}

// Resume restarts execution at a saved PC:DISEPC: fetch re-reads the
// application instruction at PC; the DISE engine re-expands the replacement
// sequence and skips the first DISEPC instructions.
func (m *Machine) Resume(st InterruptState) error {
	m.unit = st.Unit
	if st.DISEPC == 0 {
		return nil
	}
	if m.expander == nil {
		return fmt.Errorf("emu: resume at DISEPC %d without an expander", st.DISEPC)
	}
	u := &m.units[st.Unit]
	in, pc := u.inst, u.addr
	exp := m.expander.Expand(in, pc)
	if exp == nil || exp.Insts == nil || st.DISEPC >= len(exp.Insts) {
		return fmt.Errorf("emu: resume at DISEPC %d: no matching expansion", st.DISEPC)
	}
	m.seq = exp.Insts
	m.seqTmpl = exp.Templates
	m.seqIdx = st.DISEPC
	m.seqStall = exp.Stall
	m.seqPT, m.seqRT, m.seqComp = exp.PTMiss, exp.RTMiss, exp.Composed
	m.trigPC = pc
	m.trigUnit = st.Unit
	m.trigger = in
	return nil
}
