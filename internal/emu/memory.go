package emu

import (
	"encoding/binary"
	"sort"
)

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse, paged, byte-addressed 64-bit data memory.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	// One-entry page TLB: accesses cluster heavily (stack, current data
	// structure), so remembering the last page touched removes the map
	// lookup from most accesses. Pages are never freed, so the cached
	// pointer can only go stale by pointing at a still-valid page.
	// While lastPage is nil, lastPN holds noPage — an impossible page
	// number (addresses shift right by pageShift, so real page numbers fit
	// in 52 bits) — letting the inlined fast paths test only lastPN.
	lastPN   uint64
	lastPage *[pageSize]byte
}

// noPage marks an empty one-entry TLB; no valid address maps to it.
const noPage = ^uint64(0)

// NewMemory returns an empty memory; unwritten locations read as zero.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageSize]byte{}, lastPN: noPage}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	if m.lastPN == pn {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read64 reads a little-endian 64-bit value (no alignment requirement).
// The TLB-hit in-page case is small enough to inline into the emulator's
// dispatch loops; everything else takes the slow helper.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & (pageSize - 1)
	if addr>>pageShift == m.lastPN && off <= pageSize-8 {
		return binary.LittleEndian.Uint64(m.lastPage[off:])
	}
	return m.read64Slow(addr)
}

func (m *Memory) read64Slow(addr uint64) uint64 {
	if off := addr & (pageSize - 1); off <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var buf [8]byte
	m.read(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Write64 writes a little-endian 64-bit value; structured like Read64 so the
// TLB-hit case inlines.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & (pageSize - 1)
	if addr>>pageShift == m.lastPN && off <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.lastPage[off:], v)
		return
	}
	m.write64Slow(addr, v)
}

func (m *Memory) write64Slow(addr uint64, v uint64) {
	if off := addr & (pageSize - 1); off <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.write(addr, buf[:])
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[off:])
	}
	var buf [4]byte
	m.read(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[off:], v)
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	m.write(addr, buf[:])
}

func (m *Memory) read(addr uint64, buf []byte) {
	for i := range buf {
		buf[i] = m.LoadByte(addr + uint64(i))
	}
}

func (m *Memory) write(addr uint64, buf []byte) {
	for i, b := range buf {
		m.StoreByte(addr+uint64(i), b)
	}
}

// Load copies data into memory starting at base, a page span at a time.
func (m *Memory) Load(base uint64, data []byte) {
	for len(data) > 0 {
		off := base & (pageSize - 1)
		n := pageSize - int(off)
		if n > len(data) {
			n = len(data)
		}
		copy(m.page(base, true)[off:], data[:n])
		base += uint64(n)
		data = data[n:]
	}
}

// Pages returns the number of materialized pages (memory footprint proxy).
func (m *Memory) Pages() int { return len(m.pages) }

// Checksum returns a deterministic FNV-1a digest of the entire memory image
// (pages visited in address order, zero pages ignored). Fault campaigns
// compare it against a golden run's digest to detect silent data corruption.
func (m *Memory) Checksum() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, pn := range pns {
		p := m.pages[pn]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			// An all-zero page is indistinguishable from an untouched one.
			continue
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], pn)
		for _, b := range buf {
			mix(b)
		}
		for _, b := range p {
			mix(b)
		}
	}
	return h
}
