package emu

// Exhaustive ALU semantics: every operate instruction checked against the
// corresponding Go computation over randomized operands, plus the DISE
// branch and sequence-exit semantics of §2.1 that the ACF tests rely on.

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
)

// evalRR is the reference semantics of register-register operates.
var evalRR = map[isa.Opcode]func(a, b uint64) uint64{
	isa.OpADDQ:   func(a, b uint64) uint64 { return a + b },
	isa.OpSUBQ:   func(a, b uint64) uint64 { return a - b },
	isa.OpMULQ:   func(a, b uint64) uint64 { return a * b },
	isa.OpAND:    func(a, b uint64) uint64 { return a & b },
	isa.OpBIS:    func(a, b uint64) uint64 { return a | b },
	isa.OpXOR:    func(a, b uint64) uint64 { return a ^ b },
	isa.OpSLL:    func(a, b uint64) uint64 { return a << (b & 63) },
	isa.OpSRL:    func(a, b uint64) uint64 { return a >> (b & 63) },
	isa.OpSRA:    func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) },
	isa.OpCMPEQ:  func(a, b uint64) uint64 { return b2u(a == b) },
	isa.OpCMPLT:  func(a, b uint64) uint64 { return b2u(int64(a) < int64(b)) },
	isa.OpCMPLE:  func(a, b uint64) uint64 { return b2u(int64(a) <= int64(b)) },
	isa.OpCMPULT: func(a, b uint64) uint64 { return b2u(a < b) },
	isa.OpCMPULE: func(a, b uint64) uint64 { return b2u(a <= b) },
}

// evalRI is the reference semantics of register-immediate operates.
var evalRI = map[isa.Opcode]func(a uint64, imm int64) uint64{
	isa.OpADDQI:   func(a uint64, i int64) uint64 { return a + uint64(i) },
	isa.OpSUBQI:   func(a uint64, i int64) uint64 { return a - uint64(i) },
	isa.OpMULQI:   func(a uint64, i int64) uint64 { return a * uint64(i) },
	isa.OpANDI:    func(a uint64, i int64) uint64 { return a & uint64(i) },
	isa.OpBISI:    func(a uint64, i int64) uint64 { return a | uint64(i) },
	isa.OpXORI:    func(a uint64, i int64) uint64 { return a ^ uint64(i) },
	isa.OpSLLI:    func(a uint64, i int64) uint64 { return a << (uint64(i) & 63) },
	isa.OpSRLI:    func(a uint64, i int64) uint64 { return a >> (uint64(i) & 63) },
	isa.OpSRAI:    func(a uint64, i int64) uint64 { return uint64(int64(a) >> (uint64(i) & 63)) },
	isa.OpCMPEQI:  func(a uint64, i int64) uint64 { return b2u(int64(a) == i) },
	isa.OpCMPLTI:  func(a uint64, i int64) uint64 { return b2u(int64(a) < i) },
	isa.OpCMPULTI: func(a uint64, i int64) uint64 { return b2u(a < uint64(i)) },
}

// scratch machine with a single halt, used to execute single instructions.
func scratchMachine() *Machine {
	return New(asm.MustAssemble("s", ".entry main\nmain:\n halt\n"))
}

func TestOperateSemanticsExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	operands := []uint64{0, 1, 2, 63, 64, 0x7fffffffffffffff, 0x8000000000000000, ^uint64(0)}
	for i := 0; i < 40; i++ {
		operands = append(operands, r.Uint64())
	}
	m := scratchMachine()
	for op, ref := range evalRR {
		for _, a := range operands {
			for _, b := range operands[:12] {
				m.SetReg(1, a)
				m.SetReg(2, b)
				in := isa.Inst{Op: op, RS: 1, RT: 2, RD: 3}
				var d DynInst
				d.Unit = 0
				m.applyEffects(in, &d)
				if got, want := m.Reg(3), ref(a, b); got != want {
					t.Fatalf("%v with a=%#x b=%#x: got %#x, want %#x", op, a, b, got, want)
				}
			}
		}
	}
	imms := []int64{0, 1, -1, 5, 63, -16, 32767, -32768}
	for op, ref := range evalRI {
		for _, a := range operands {
			for _, i := range imms {
				m.SetReg(1, a)
				in := isa.Inst{Op: op, RS: 1, RD: 3, RT: isa.NoReg, Imm: i}
				var d DynInst
				m.applyEffects(in, &d)
				if got, want := m.Reg(3), ref(a, i); got != want {
					t.Fatalf("%v with a=%#x imm=%d: got %#x, want %#x", op, a, i, got, want)
				}
			}
		}
	}
}

func TestLdaLdahSemantics(t *testing.T) {
	m := scratchMachine()
	m.SetReg(2, 1000)
	var d DynInst
	m.applyEffects(isa.Inst{Op: isa.OpLDA, RD: 3, RS: 2, RT: isa.NoReg, Imm: -8}, &d)
	if m.Reg(3) != 992 {
		t.Errorf("lda = %d", m.Reg(3))
	}
	m.applyEffects(isa.Inst{Op: isa.OpLDAH, RD: 3, RS: 2, RT: isa.NoReg, Imm: 2}, &d)
	if m.Reg(3) != 1000+2<<16 {
		t.Errorf("ldah = %d", m.Reg(3))
	}
}

func TestZeroRegisterSemantics(t *testing.T) {
	m := scratchMachine()
	var d DynInst
	m.applyEffects(isa.Inst{Op: isa.OpADDQI, RS: isa.RegZero, RD: isa.RegZero, RT: isa.NoReg, Imm: 7}, &d)
	if m.Reg(isa.RegZero) != 0 {
		t.Error("zero register must stay zero")
	}
}

// diseBranchController installs a production whose DISE branch jumps
// *forward over* one instruction and another whose target is the sequence
// length (exit).
func diseBranchController(t *testing.T, src string) *core.Controller {
	t.Helper()
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	if _, err := c.InstallFile(src, nil); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDiseBranchSkipsWithinSequence(t *testing.T) {
	// dbne taken skips the poisoning instruction; dbne not-taken executes it.
	c := diseBranchController(t, `
prod p {
    match op == res2
    replace {
        dbne $dr0, @skip
        lda  $dr1, 99(zero)
    @skip:
        lda  $dr2, 7(zero)
    }
}
`)
	run := func(flag uint64) *Machine {
		m := New(asm.MustAssemble("d", ".entry main\nmain:\n res2 0, 0, 0, #0\n halt\n"))
		m.SetExpander(c.Engine())
		m.SetReg(isa.RegDR0, flag)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := run(1) // dbne taken: skip
	if m.Reg(isa.RegDR0+1) != 0 || m.Reg(isa.RegDR0+2) != 7 {
		t.Errorf("taken DISE branch executed the skipped inst: dr1=%d dr2=%d",
			m.Reg(isa.RegDR0+1), m.Reg(isa.RegDR0+2))
	}
	m = run(0) // not taken: fall through
	if m.Reg(isa.RegDR0+1) != 99 || m.Reg(isa.RegDR0+2) != 7 {
		t.Errorf("untaken DISE branch skipped code: dr1=%d dr2=%d",
			m.Reg(isa.RegDR0+1), m.Reg(isa.RegDR0+2))
	}
}

func TestDiseBranchToSequenceEndExits(t *testing.T) {
	// A DISE branch targeting one-past-the-end abandons the rest of the
	// sequence, including the trigger copy.
	c := diseBranchController(t, `
prod p {
    match op == res2
    replace {
        dbne $dr0, @end
        lda  $dr1, 5(zero)
    @end:
    }
}
`)
	_ = c
	// The @end label at the very end is awkward in the language (labels
	// name instructions); use a numeric target instead.
	c2 := diseBranchController(t, `
prod p {
    match op == res2
    replace {
        dbne $dr0, 2
        lda  $dr1, 5(zero)
    }
}
`)
	m := New(asm.MustAssemble("d", ".entry main\nmain:\n res2 0, 0, 0, #0\n lda r4, 1(zero)\n halt\n"))
	m.SetExpander(c2.Engine())
	m.SetReg(isa.RegDR0, 1)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(isa.RegDR0+1) != 0 {
		t.Error("exited sequence still executed its tail")
	}
	if m.Reg(4) != 1 {
		t.Error("execution did not continue after the trigger")
	}
}

func TestBackwardDiseBranchLoopsWithinSequence(t *testing.T) {
	// A replacement sequence with an internal counted loop: DISE branches
	// can iterate inside one expansion ("complex tasks", §2.1).
	c := diseBranchController(t, `
prod p {
    match op == res2
    replace {
        lda  $dr0, 4(zero)
    @top:
        lda  $dr1, 3($dr1)
        subqi $dr0, 1, $dr0
        dbgt $dr0, @top
    }
}
`)
	m := New(asm.MustAssemble("d", ".entry main\nmain:\n res2 0, 0, 0, #0\n halt\n"))
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(isa.RegDR0 + 1); got != 12 {
		t.Errorf("internal loop accumulated %d, want 12", got)
	}
}

func TestAppBranchInsideSequenceSquashesTail(t *testing.T) {
	// An application-level branch inside a sequence that is taken exits the
	// sequence and squashes the rest (paper §2.1 — the MFI error case).
	c := diseBranchController(t, `
prod p {
    match op == res2
    replace {
        beq $dr0, 1
        lda $dr1, 88(zero)
    }
}
`)
	m := New(asm.MustAssemble("d", `
.entry main
main:
    res2 0, 0, 0, #0
    lda r4, 9(zero)
    halt
`))
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// beq $dr0 (0) taken, displacement 1 relative to the *trigger*: control
	// resumes at main+2 (halt), skipping both the sequence tail and the
	// next application instruction.
	if m.Reg(isa.RegDR0+1) != 0 {
		t.Error("squashed tail executed")
	}
	if m.Reg(4) != 0 {
		t.Error("application branch target wrong: lda r4 executed")
	}
}
