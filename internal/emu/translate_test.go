package emu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
)

// The SMC hammer: a hot loop that patches one of its own instructions on
// every iteration, alternating the patched word between "add 1" and "add 2"
// with an xor swap. The loop is exactly the promotion candidate the
// translator wants, and every iteration invalidates what it just promoted —
// if a stale superblock ever executes, the accumulator comes out wrong, and
// if the invalidation ledger drifts, the Stats comparison catches it.
const hammerIters = 50

func hammerProgram(t *testing.T) *program.Program {
	t.Helper()
	// Unit layout (4 bytes each from TextBase): the patch target is unit 7
	// (byte 28). The patch words arrive in r5/r6 via SetReg — the text image
	// is not mirrored into data memory, so they cannot be loaded from text.
	return asm.MustAssemble("hammer", `
.entry main
main:
    li r2, 1
    slli r2, 26, r2
    li r4, 50
loop:
    stl r5, 28(r2)
    xor r5, r6, r5
    xor r6, r5, r6
    xor r5, r6, r5
    addqi r1, 1, r1
    subqi r4, 1, r4
    bgt r4, loop
    halt
`)
}

// encodeWord returns the image word of the single instruction in src.
func encodeWord(t *testing.T, src string) uint64 {
	t.Helper()
	p := asm.MustAssemble("word", ".entry main\nmain:\n"+src+"\n halt\n")
	w, err := isa.Encode(p.Text[0])
	if err != nil {
		t.Fatal(err)
	}
	return uint64(w)
}

func runHammer(t *testing.T, mode TranslateMode, threshold int) *Machine {
	t.Helper()
	m := New(hammerProgram(t))
	m.SetReg(5, encodeWord(t, " addqi r1, 1, r1"))
	m.SetReg(6, encodeWord(t, " addqi r1, 2, r1"))
	m.SetTranslate(mode, threshold)
	if err := m.Run(); err != nil {
		t.Fatalf("mode %v threshold %d: %v", mode, threshold, err)
	}
	return m
}

func TestSMCInvalidationHammer(t *testing.T) {
	interp := runHammer(t, TranslateOff, 0)

	// Iteration i (1-based) executes the word stored that iteration:
	// odd iterations add 1, even iterations add 2.
	want := uint64((hammerIters+1)/2 + hammerIters/2*2)
	if got := interp.Reg(1); got != want {
		t.Fatalf("interpreted accumulator = %d, want %d", got, want)
	}
	if interp.Stats.TextWrites != hammerIters {
		t.Fatalf("TextWrites = %d, want %d", interp.Stats.TextWrites, hammerIters)
	}
	if interp.Stats.Redecodes != hammerIters {
		t.Fatalf("Redecodes = %d, want %d", interp.Stats.Redecodes, hammerIters)
	}
	if tr, _ := interp.TranslateCounts(); tr != 0 {
		t.Fatalf("TranslateOff still translated %d blocks", tr)
	}

	// Sweep promotion timing: at every threshold the patch lands before,
	// at, and after the iteration that promotes the loop body.
	for _, threshold := range []int{1, 2, 3, 5, 8, 32} {
		m := runHammer(t, TranslateAuto, threshold)
		if got := m.Reg(1); got != want {
			t.Errorf("threshold %d: accumulator = %d, want %d (stale translated code executed?)",
				threshold, got, want)
		}
		if m.Stats != interp.Stats {
			t.Errorf("threshold %d: stats diverge:\ninterp: %+v\ntrans:  %+v",
				threshold, interp.Stats, m.Stats)
		}
		tr, dropped := m.TranslateCounts()
		if tr == 0 {
			t.Errorf("threshold %d: translation never engaged", threshold)
		}
		if dropped == 0 {
			t.Errorf("threshold %d: no superblock was invalidated by the text stores", threshold)
		}
	}
}

// A loop with no self-modification translates once and is never dropped; the
// translated execution is observably identical to interpretation.
func TestTranslationStableLoop(t *testing.T) {
	src := `
.entry main
.data
buf: .space 512
.text
main:
    la r1, buf
    li r2, 64
loop:
    ldq r3, 0(r1)
    addqi r3, 7, r3
    stq r3, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`
	run := func(mode TranslateMode) *Machine {
		m := New(asm.MustAssemble("stable", src))
		m.SetTranslate(mode, 0)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	interp := run(TranslateOff)
	trans := run(TranslateAuto)
	if interp.Stats != trans.Stats {
		t.Errorf("stats diverge:\ninterp: %+v\ntrans:  %+v", interp.Stats, trans.Stats)
	}
	if a, b := interp.Mem().Checksum(), trans.Mem().Checksum(); a != b {
		t.Errorf("memory diverges: %#x vs %#x", a, b)
	}
	tr, dropped := trans.TranslateCounts()
	if tr == 0 {
		t.Error("translation never engaged on a hot loop")
	}
	if dropped != 0 {
		t.Errorf("%d superblocks dropped with no invalidation source", dropped)
	}
}
