package emu

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// smcProgram stores word into the text image over patchTarget, then executes
// the patched unit and prints r1.
func smcProgram(t *testing.T, patchTarget isa.Inst, word uint32) *program.Program {
	t.Helper()
	const patchUnit = 3
	text := []isa.Inst{
		// r2 = address of the unit to patch; r3 = the replacement word.
		{Op: isa.OpLDA, RS: isa.RegZero, RD: 2, Imm: int64(program.TextBase + patchUnit*isa.InstBytes)},
		{Op: isa.OpLDA, RS: isa.RegZero, RD: 3, Imm: int64(word)},
		{Op: isa.OpSTL, RT: 3, RS: 2, Imm: 0},
		patchTarget,
		{Op: isa.OpSYS, Imm: isa.SysPutInt},
		{Op: isa.OpHALT},
	}
	p := &program.Program{Name: "smc", Entry: 0, Text: text, Symbols: map[string]int{}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// A store into the text segment must invalidate the predecoded unit: fetch
// sees the patched instruction, not the load-time decoding.
func TestSelfModifyingStoreForcesRedecode(t *testing.T) {
	oldInst := isa.Inst{Op: isa.OpBISI, RS: isa.RegZero, RD: 1, Imm: 111}
	newInst := isa.Inst{Op: isa.OpBISI, RS: isa.RegZero, RD: 1, Imm: 222}
	word, err := isa.Encode(newInst)
	if err != nil {
		t.Fatal(err)
	}
	m := New(smcProgram(t, oldInst, word))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "222" {
		t.Errorf("output = %q, want 222 (patched instruction must execute)", got)
	}
	if m.Stats.TextWrites != 1 || m.Stats.Redecodes != 1 {
		t.Errorf("TextWrites = %d, Redecodes = %d, want 1, 1",
			m.Stats.TextWrites, m.Stats.Redecodes)
	}
	// The program image itself is untouched: a fresh machine re-predecodes
	// the original text and replays the same execution.
	m2 := New(smcProgram(t, oldInst, word))
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m2.Output(); got != "222" {
		t.Errorf("second machine output = %q, want 222", got)
	}
}

// A patch that no longer decodes becomes an illegal instruction at fetch.
func TestSelfModifyingStoreGarbageTraps(t *testing.T) {
	oldInst := isa.Inst{Op: isa.OpBISI, RS: isa.RegZero, RD: 1, Imm: 111}
	m := New(smcProgram(t, oldInst, 0xffffffff))
	err := m.Run()
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapIllegalInst {
		t.Fatalf("err = %v, want TrapIllegalInst", err)
	}
	if m.Stats.Redecodes != 1 {
		t.Errorf("Redecodes = %d, want 1", m.Stats.Redecodes)
	}
}

// Ordinary data-segment stores must not touch the predecode cache.
func TestDataStoreDoesNotInvalidate(t *testing.T) {
	text := []isa.Inst{
		{Op: isa.OpLDA, RS: isa.RegZero, RD: 2, Imm: int64(program.DataBase)},
		{Op: isa.OpLDA, RS: isa.RegZero, RD: 3, Imm: 7},
		{Op: isa.OpSTQ, RT: 3, RS: 2, Imm: 0},
		{Op: isa.OpHALT},
	}
	p := &program.Program{Name: "data", Entry: 0, Text: text, Symbols: map[string]int{}}
	m := New(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.TextWrites != 0 || m.Stats.Redecodes != 0 {
		t.Errorf("data store counted as text write: %+v", m.Stats)
	}
}
