// Dynamic translation: runtime superblock discovery for the emulator hot
// loop. Basic-block entries in the predecoded units array are profile
// counted; past a tunable hotness threshold the straight-line region —
// following fallthrough and unconditional direct branches, stopping at
// indirect branches, traps, and DISE trigger sites — is translated into
// threaded-code form: a flat array of packed uops with constant-folded
// operands, operand-slot-resolved register indices, and the expansion memo
// inlined at trigger sites (one pointer chase via core.SiteMemo).
//
// The translated and interpreted paths are observably identical: same
// Stats, same traps, same record stream (the batched feed in dispatch.go
// emits the exact records cpu.MakeRec would build from StepInto's DynInsts).
// Translation therefore never engages where exactness is subtle for free —
// replacement sequences, strict-alignment machines, non-engine expanders —
// those always interpret.
//
// Invalidation: a store into the text image redecodes the overlapped units
// (textStore) and drops every superblock containing them, keeping the
// TextWrites/Redecodes ledgers exact; translated stores that hit text exit
// their own block immediately, so stale translated code can never execute.
// Engine-side invalidation (production install/reset, fault injection into
// the RT) is carried by the engine's TransEpoch, checked at every block
// entry — the same flush points as the expansion memo.
package emu

import (
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/rec"
)

// TranslateMode selects the dynamic-translation policy for a machine.
type TranslateMode int

const (
	// TranslateAuto translates blocks once they pass the hotness threshold
	// (the default).
	TranslateAuto TranslateMode = iota
	// TranslateOff forces pure interpretation.
	TranslateOff
	// TranslateAlways translates every block on first execution (threshold
	// 1): slower to warm up, but it keeps the translated path covered by
	// every test when forced via DISE_TRANSLATE=always.
	TranslateAlways
)

func (t TranslateMode) String() string {
	switch t {
	case TranslateOff:
		return "off"
	case TranslateAlways:
		return "always"
	}
	return "auto"
}

// ParseTranslateMode parses a -translate flag / DISE_TRANSLATE value.
func ParseTranslateMode(s string) (TranslateMode, bool) {
	switch s {
	case "off":
		return TranslateOff, true
	case "always":
		return TranslateAlways, true
	case "", "auto", "on":
		return TranslateAuto, true
	}
	return TranslateAuto, false
}

// defaultHotThreshold is how many times a block head must be entered before
// TranslateAuto translates it: low enough that the capture loops that
// dominate serving warm up within their first buffer, high enough that
// straight-through code is never translated. Translation itself is cheap
// (one linear decode pass, no codegen), so the threshold leans low — a block
// entered eight times is almost certainly a loop.
const defaultHotThreshold = 8

const (
	// transMaxOps caps one superblock's uop count (BR-following could
	// otherwise chain a whole program into one block).
	transMaxOps = 256
	// transMaxTotalOps caps the machine's total translated footprint: a
	// pathological program cannot make the translator outgrow the program
	// it is translating by more than a small factor.
	transMaxTotalOps = 1 << 14
)

var (
	transDefaultMode      = TranslateAuto
	transDefaultThreshold = uint32(0) // 0 = mode default
)

func init() {
	if mode, ok := ParseTranslateMode(os.Getenv("DISE_TRANSLATE")); ok {
		transDefaultMode = mode
	}
}

// DefaultTranslate returns the translation mode new machines start with
// (TranslateAuto unless DISE_TRANSLATE or SetDefaultTranslate overrode it):
// flag plumbing that adjusts only the threshold keeps the mode as is.
func DefaultTranslate() TranslateMode { return transDefaultMode }

// SetDefaultTranslate sets the translation mode and hot threshold new
// machines start with (hotThreshold <= 0 selects the mode's default). The
// disesim/disebench -translate and -hot-threshold flags route here.
func SetDefaultTranslate(mode TranslateMode, hotThreshold int) {
	transDefaultMode = mode
	transDefaultThreshold = 0
	if hotThreshold > 0 {
		transDefaultThreshold = uint32(hotThreshold)
	}
}

func thresholdFor(mode TranslateMode, hotThreshold uint32) uint32 {
	if hotThreshold > 0 {
		return hotThreshold
	}
	if mode == TranslateAlways {
		return 1
	}
	return defaultHotThreshold
}

// SetTranslate configures this machine's translation mode and hot threshold
// (hotThreshold <= 0 selects the mode's default). It flushes all translated
// code; it may be called at any point between runs.
func (m *Machine) SetTranslate(mode TranslateMode, hotThreshold int) {
	t := &m.trans
	t.mode = mode
	t.threshold = thresholdFor(mode, uint32(max(hotThreshold, 0)))
	m.transSetup()
}

// TranslateCounts reports how many superblocks this machine has translated
// and how many were dropped by invalidation (self-modifying stores or engine
// epoch changes). Tests use it to assert both that translation engaged and
// that invalidation fired.
func (m *Machine) TranslateCounts() (translated, dropped int64) {
	return m.trans.translated, m.trans.dropped
}

// regDiscard marks a destination whose write is architecturally discarded
// (the zero register, or a fault-corrupted register number outside the
// file): compiled ops skip the write, exactly as SetReg would.
const regDiscard = 0xFF

// Synthetic uop kinds. Plain kinds are the opcode itself (the opcode space
// is well below 0x80); synthetic kinds dispatch block-structural behavior.
const (
	xNop uint8 = 0x80 + iota
	// xExit leaves the block: m.unit = op.unit, no instruction executed.
	xExit
	// xTrigger is an application fetch a DISE pattern may match: it calls
	// ExpandSite and either hands the machine to the interpreter (expansion)
	// or executes its inner compiled kind (passthrough).
	xTrigger
	// xTrap is an instruction that always traps at execute (illegal opcode,
	// unexpanded codeword).
	xTrap
	xHalt
	xSys
	// xCond is any of the six conditional branches; the opcode lives in
	// op.inner for condNow.
	xCond
	xBr
	xBsr
)

// uop is one translated instruction: operands constant-folded, register
// operand slots resolved to file indices, control flow resolved to uop
// indices, and the timing-record template precomputed for the batched feed.
type uop struct {
	kind  uint8
	inner uint8 // xTrigger: compiled passthrough kind; xCond: the opcode
	a     uint8 // first source register file index
	b     uint8 // second source register file index
	d     uint8 // destination index, or regDiscard

	next    int32 // uop index executed next (fallthrough / BR target)
	tgt     int32 // xCond taken target uop index, -1 = leave block
	unit    int32 // application unit (resume point, trap attribution)
	tgtUnit int32 // xCond taken / xExit target unit

	imm  int64
	link uint64 // BR/BSR return-address value written to RD
	ret  uint64 // BSR fall-through address for the RAS (0: no successor)

	tmpl rec.Rec        // record template for the batched feed
	in   isa.Inst       // original instruction (traps, trigger re-dispatch)
	site *core.SiteMemo // xTrigger: inlined expansion-memo entry
}

// sblock is one translated superblock.
type sblock struct {
	head  int32
	ops   []uop
	units []int32 // application units compiled into the block
}

// noBlock marks block heads translation rejected (e.g. the head instruction
// itself is uncompilable) so they are not retried every entry.
var noBlock = new(sblock)

func (b *sblock) exitTo(u int) {
	b.ops = append(b.ops, uop{kind: xExit, unit: int32(u), tgtUnit: int32(u), tgt: -1})
}

func (b *sblock) push(u int, op uop, visited map[int]int32) {
	visited[u] = int32(len(b.ops))
	b.ops = append(b.ops, op)
	b.units = append(b.units, int32(u))
}

func (b *sblock) contains(u int32) bool {
	for _, bu := range b.units {
		if bu == u {
			return true
		}
	}
	return false
}

// transState is the per-machine translation state.
type transState struct {
	mode      TranslateMode
	threshold uint32
	enabled   bool
	eng       *core.Engine // non-nil iff the expander is the DISE engine
	epoch     uint64       // engine TransEpoch the translated code assumes

	heat    []uint32  // per-unit block-entry counts (boundaries only)
	blockAt []*sblock // per-unit translated block, noBlock, or nil
	cover   []int32   // per-unit count of blocks containing the unit
	blocks  []*sblock
	totalOps int

	// lastFall persists fallthrough tracking across FillRecs calls: the unit
	// a plain instruction fell into, so only control-transfer targets count
	// as block boundaries.
	lastFall int

	translated int64
	dropped    int64
}

// transSetup recomputes whether translation can engage for the current
// expander and flushes all translated code. Translation requires either no
// expander or the DISE engine proper: other expanders (the dedicated
// decompressor baseline) have no fetch-accounting or trigger-site protocol.
func (m *Machine) transSetup() {
	t := &m.trans
	t.eng = nil
	enabled := t.mode != TranslateOff
	switch e := m.expander.(type) {
	case nil:
	case *core.Engine:
		t.eng = e
	default:
		enabled = false
	}
	t.enabled = enabled
	m.transFlush()
}

// transFlush drops every translated block and profile counter and re-syncs
// the engine epoch.
func (m *Machine) transFlush() {
	t := &m.trans
	t.heat, t.blockAt, t.cover, t.blocks = nil, nil, nil, nil
	t.totalOps = 0
	t.lastFall = -2
	if t.eng != nil {
		t.epoch = t.eng.TransEpoch()
	}
}

// transInvalidate drops every superblock containing unit u. It is called
// from textStore for each unit a self-modifying store forced back through
// the decoder; the cover counts make the no-translation and
// not-covered cases one array read.
func (m *Machine) transInvalidate(u int) {
	t := &m.trans
	if t.cover == nil || u < 0 || u >= len(t.cover) || t.cover[u] == 0 {
		return
	}
	for i := 0; i < len(t.blocks); {
		b := t.blocks[i]
		if !b.contains(int32(u)) {
			i++
			continue
		}
		for _, bu := range b.units {
			t.cover[bu]--
		}
		t.totalOps -= len(b.ops)
		t.blockAt[b.head] = nil
		t.heat[b.head] = 0
		last := len(t.blocks) - 1
		t.blocks[i] = t.blocks[last]
		t.blocks[last] = nil
		t.blocks = t.blocks[:last]
		t.dropped++
	}
}

// hotBlock is the per-boundary fast path: return the translated block for
// unit u, or bump its heat and translate once it crosses the threshold.
// The engine epoch is checked here — every block entry — so engine-side
// invalidation (install, reset, RT fault injection) takes effect before any
// stale trigger-site assumption can execute.
func (m *Machine) hotBlock(u int) *sblock {
	t := &m.trans
	if t.eng != nil && t.eng.TransEpoch() != t.epoch {
		m.transFlush()
	}
	if t.blockAt == nil {
		nu := len(m.units)
		t.blockAt = make([]*sblock, nu)
		t.heat = make([]uint32, nu)
		t.cover = make([]int32, nu)
	}
	if b := t.blockAt[u]; b != nil {
		if b == noBlock {
			return nil
		}
		return b
	}
	h := t.heat[u] + 1
	t.heat[u] = h
	if h < t.threshold {
		return nil
	}
	return m.translate(u)
}

// srcIdx resolves a source register to a file index: invalid (fault
// corrupted) registers read as zero, exactly like Reg, via the hardwired
// zero register's slot.
func srcIdx(r isa.Reg) uint8 {
	if r.Valid() {
		return uint8(r)
	}
	return uint8(isa.RegZero)
}

// dstIdx resolves a destination register, mapping discarded writes (zero
// register, invalid numbers) to regDiscard.
func dstIdx(r isa.Reg) uint8 {
	if !r.Valid() || r == isa.RegZero {
		return regDiscard
	}
	return uint8(r)
}

// recTemplate precomputes the static part of the timing record one
// application instruction produces (dynamic fields — MemAddr, Taken,
// Mispredict, PT/RT miss flags — are filled by the feed driver).
func recTemplate(in isa.Inst, pc uint64, size uint8) rec.Rec {
	sel := rec.Sel(in.Op)
	regs := [4]isa.Reg{in.RS, in.RT, in.RD, isa.NoReg}
	f := rec.IsApp
	switch in.Op {
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBLE, isa.OpBGT, isa.OpBGE:
		f |= rec.IsBranch
	case isa.OpBR, isa.OpBSR:
		f |= rec.IsBranch | rec.Taken
	case isa.OpLDQ, isa.OpLDL:
		f |= rec.IsLoad
	case isa.OpSTQ, isa.OpSTL:
		f |= rec.IsStore
	}
	return rec.Rec{
		PC:        pc,
		FetchSize: size,
		Op:        in.Op,
		SrcA:      regs[sel.A],
		SrcB:      regs[sel.B],
		Dst:       regs[sel.D],
		Lat:       rec.Lat(in.Op),
		Flags:     f,
	}
}

// translate builds the superblock headed at unit `head`: follow fallthrough
// and direct unconditional branches, embedding conditional branches as
// two-way uops, and stop at indirect control, traps, syscalls that halt the
// block shape (halt), trigger sites, and region revisits. Returns nil (and
// marks the head noBlock) when nothing useful compiles.
func (m *Machine) translate(head int) *sblock {
	t := &m.trans
	if t.totalOps >= transMaxTotalOps {
		return nil
	}
	b := &sblock{head: int32(head)}
	visited := make(map[int]int32)
	type condPatch struct {
		op  int32
		tgt int
	}
	var patches []condPatch
	u := head
build:
	for {
		if u < 0 || u >= len(m.units) || len(b.ops) >= transMaxOps {
			b.exitTo(u)
			break
		}
		if _, ok := visited[u]; ok {
			// Fallthrough reached an already-compiled unit: re-enter through
			// the interpreter (which will land back on this block's head or
			// another block).
			b.exitTo(u)
			break
		}
		ui := &m.units[u]
		in := ui.inst
		op := uop{
			kind: uint8(in.Op),
			unit: int32(u),
			tgt:  -1,
			next: int32(len(b.ops)) + 1,
			imm:  in.Imm,
			in:   in,
			tmpl: recTemplate(in, ui.addr, ui.size),
		}
		trig := t.eng != nil && t.eng.MayExpand(in.Op)
		switch in.Op {
		case isa.OpLDQ, isa.OpLDL:
			op.a, op.d = srcIdx(in.RS), dstIdx(in.RD)
		case isa.OpSTQ, isa.OpSTL:
			op.a, op.b = srcIdx(in.RS), srcIdx(in.RT)
		case isa.OpLDA:
			op.a, op.d = srcIdx(in.RS), dstIdx(in.RD)
			if op.d == regDiscard {
				op.kind = xNop
			}
		case isa.OpLDAH:
			op.kind = uint8(isa.OpLDA)
			op.imm = in.Imm << 16
			op.a, op.d = srcIdx(in.RS), dstIdx(in.RD)
			if op.d == regDiscard {
				op.kind = xNop
			}
		case isa.OpADDQ, isa.OpSUBQ, isa.OpMULQ, isa.OpAND, isa.OpBIS,
			isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpCMPEQ,
			isa.OpCMPLT, isa.OpCMPLE, isa.OpCMPULT, isa.OpCMPULE:
			op.a, op.b, op.d = srcIdx(in.RS), srcIdx(in.RT), dstIdx(in.RD)
			if op.d == regDiscard {
				op.kind = xNop
			}
		case isa.OpADDQI, isa.OpSUBQI, isa.OpMULQI, isa.OpANDI, isa.OpBISI,
			isa.OpXORI, isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpCMPEQI,
			isa.OpCMPLTI, isa.OpCMPULTI:
			op.a, op.d = srcIdx(in.RS), dstIdx(in.RD)
			if op.d == regDiscard {
				op.kind = xNop
			}
		case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBLE, isa.OpBGT, isa.OpBGE:
			if trig {
				b.exitTo(u)
				break build
			}
			op.kind, op.inner = xCond, uint8(in.Op)
			op.a = srcIdx(in.RS)
			tgt := u + 1 + int(in.Imm)
			op.tgtUnit = int32(tgt)
			if idx, ok := visited[tgt]; ok {
				op.tgt = idx
			} else {
				patches = append(patches, condPatch{op: int32(len(b.ops)), tgt: tgt})
			}
			b.push(u, op, visited)
			u++
			continue
		case isa.OpBR, isa.OpBSR:
			if trig {
				b.exitTo(u)
				break build
			}
			op.kind = xBr
			if in.Op == isa.OpBSR {
				op.kind = xBsr
				if u+1 < m.prog.NumUnits() {
					op.ret = m.prog.Addr(u + 1)
				}
			}
			op.d = dstIdx(in.RD)
			op.link = m.prog.Addr(minInt(u+1, m.prog.NumUnits()))
			tgt := u + 1 + int(in.Imm)
			if idx, ok := visited[tgt]; ok {
				// Direct back edge: the block is a loop.
				op.next = idx
				b.push(u, op, visited)
				break build
			}
			b.push(u, op, visited)
			if tgt < 0 || tgt >= len(m.units) {
				b.exitTo(tgt) // interpreter raises TrapPCOutOfText there
				break build
			}
			u = tgt
			continue
		case isa.OpJMP, isa.OpJSR, isa.OpRET, isa.OpJEQ, isa.OpJNE:
			// Indirect control: superblock boundary.
			b.exitTo(u)
			break build
		case isa.OpHALT:
			if trig {
				b.exitTo(u)
				break build
			}
			op.kind = xHalt
			b.push(u, op, visited)
			break build
		case isa.OpSYS:
			if trig {
				b.exitTo(u)
				break build
			}
			op.kind = xSys
			b.push(u, op, visited)
			u++
			continue
		default:
			if trig {
				b.exitTo(u)
				break build
			}
			op.kind = xTrap
			b.push(u, op, visited)
			break build
		}
		// Straight-line op (memory / ALU / LDA / discarded-dst nop).
		if trig {
			op.inner = op.kind
			op.kind = xTrigger
			op.site = new(core.SiteMemo)
			b.push(u, op, visited)
			b.exitTo(u + 1)
			break
		}
		b.push(u, op, visited)
		u++
	}
	for _, p := range patches {
		if idx, ok := visited[p.tgt]; ok {
			b.ops[p.op].tgt = idx
		}
	}
	if len(b.ops) == 0 || b.ops[0].kind == xExit {
		t.blockAt[head] = noBlock
		return nil
	}
	t.blocks = append(t.blocks, b)
	t.blockAt[head] = b
	for _, bu := range b.units {
		t.cover[bu]++
	}
	t.totalOps += len(b.ops)
	t.translated++
	return b
}

// condNow evaluates a conditional-branch direction (the compiled form of
// condTaken, operating on the already-read source value).
func condNow(op uint8, v int64) bool {
	switch isa.Opcode(op) {
	case isa.OpBEQ:
		return v == 0
	case isa.OpBNE:
		return v != 0
	case isa.OpBLT:
		return v < 0
	case isa.OpBLE:
		return v <= 0
	case isa.OpBGT:
		return v > 0
	case isa.OpBGE:
		return v >= 0
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
