package emu

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func runSrc(t *testing.T, src string) error {
	t.Helper()
	return New(asm.MustAssemble("t", src)).Run()
}

func wantKind(t *testing.T, err error, kind TrapKind) *Trap {
	t.Helper()
	var trap *Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v (%T), want *Trap", err, err)
	}
	if trap.Kind != kind {
		t.Fatalf("trap kind = %v, want %v (err: %v)", trap.Kind, kind, err)
	}
	return trap
}

func TestTrapBadSyscall(t *testing.T) {
	err := runSrc(t, `
.entry main
main:
    sys 99
    halt
`)
	wantKind(t, err, TrapBadSyscall)
}

func TestTrapPCOutOfText(t *testing.T) {
	// No halt: sequential fetch runs off the image.
	err := runSrc(t, `
.entry main
main:
    li r1, 1
`)
	wantKind(t, err, TrapPCOutOfText)
}

func TestTrapOutOfSegmentJump(t *testing.T) {
	err := runSrc(t, `
.entry main
main:
    li r1, 12345
    jmp zero, (r1)
`)
	trap := wantKind(t, err, TrapOutOfSegment)
	if trap.Addr != 12345 {
		t.Errorf("trap addr = %#x, want 12345", trap.Addr)
	}
	if trap.ACF {
		t.Error("plain wild jump is not an ACF event")
	}
}

func TestTrapACFViolationViaSys3(t *testing.T) {
	err := runSrc(t, `
.entry main
main:
    sys 3
`)
	trap := wantKind(t, err, TrapACFViolation)
	if !trap.ACF {
		t.Error("sys 3 must be flagged as ACF-raised")
	}
	if !errors.Is(err, ErrACFViolation) {
		t.Error("must match ErrACFViolation")
	}
}

func TestTrapBudgetMatchesSentinel(t *testing.T) {
	m := New(asm.MustAssemble("t", `
.entry main
main:
    br zero, main
`))
	m.SetBudget(100)
	err := m.Run()
	wantKind(t, err, TrapBudget)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("budget trap must match ErrBudget: %v", err)
	}
	if errors.Is(err, ErrACFViolation) {
		t.Error("budget trap must not match ErrACFViolation")
	}
}

func TestTrapBadCodeword(t *testing.T) {
	// A dedicated codeword with no expander (or no matching production)
	// reaching execute is an architectural trap, not a crash.
	p := asm.MustAssemble("t", `
.entry main
main:
    res0 1, 2, 3, #5
    halt
`)
	err := New(p).Run()
	wantKind(t, err, TrapBadCodeword)
}

func TestTrapUnalignedStrictMode(t *testing.T) {
	src := `
.entry main
main:
    li r1, 3
    ldq r2, 0(r1)
    halt
`
	// Default: byte-addressed, alignment-free.
	if err := runSrc(t, src); err != nil {
		t.Fatalf("alignment-free machine faulted: %v", err)
	}
	m := New(asm.MustAssemble("t", src))
	m.SetStrictAlign(true)
	trap := wantKind(t, m.Run(), TrapUnaligned)
	if trap.Addr != 3 {
		t.Errorf("trap addr = %#x, want 3", trap.Addr)
	}
}

func TestTrapErrorStringsNameTheKind(t *testing.T) {
	for k := TrapKind(1); k < NumTrapKinds; k++ {
		tr := &Trap{Kind: k, PC: 0x40}
		if !strings.Contains(tr.Error(), k.String()) {
			t.Errorf("trap %v: error %q does not name the kind", k, tr.Error())
		}
	}
}

func TestTrapIsSemantics(t *testing.T) {
	oos := &Trap{Kind: TrapOutOfSegment, ACF: true, Addr: 0x999}
	if !errors.Is(oos, ErrACFViolation) {
		t.Error("ACF-raised out-of-segment must match ErrACFViolation")
	}
	if !errors.Is(oos, &Trap{Kind: TrapOutOfSegment}) {
		t.Error("kind equality must match")
	}
	if errors.Is(oos, &Trap{Kind: TrapIllegalInst}) {
		t.Error("different kinds must not match")
	}
	plain := &Trap{Kind: TrapOutOfSegment}
	if errors.Is(plain, ErrACFViolation) {
		t.Error("non-ACF out-of-segment must not match ErrACFViolation")
	}
	if errors.Is(errors.New("x"), ErrACFViolation) {
		t.Error("foreign errors must not match")
	}
}

func TestTrapKindStringsTotal(t *testing.T) {
	for k := TrapKind(0); k < NumTrapKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "trap(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := TrapKind(200).String(); !strings.HasPrefix(s, "trap(") {
		t.Errorf("out-of-range kind misrendered: %q", s)
	}
}

func TestNextInstAndInReplacement(t *testing.T) {
	m := New(asm.MustAssemble("t", `
.entry main
main:
    li r1, 1
    halt
`))
	in, ok := m.NextInst()
	if !ok || in.Op != isa.OpLDA {
		t.Fatalf("NextInst = %v, %v; want the li expansion", in, ok)
	}
	if m.InReplacement() {
		t.Error("fresh machine cannot be mid-sequence")
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.NextInst(); ok {
		t.Error("halted machine still reports a next instruction")
	}
}

func TestMemoryChecksumDetectsWrites(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if a.Checksum() != b.Checksum() {
		t.Fatal("empty memories differ")
	}
	a.Write64(0x8000, 42)
	b.Write64(0x8000, 42)
	if a.Checksum() != b.Checksum() {
		t.Error("identical writes differ")
	}
	b.StoreByte(0x9000, 1)
	if a.Checksum() == b.Checksum() {
		t.Error("divergent writes collide")
	}
	// An all-zero page is indistinguishable from an untouched one.
	a.StoreByte(0x20000, 7)
	a.StoreByte(0x20000, 0)
	c := NewMemory()
	c.Write64(0x8000, 42)
	if a.Checksum() != c.Checksum() {
		t.Error("zeroed page changed the checksum")
	}
}
