package emu

import "fmt"

// ErrCancelled matches the trap raised when a context-aware run is cancelled
// or times out: errors.Is(err, ErrCancelled) classifies a termination error
// as a wall-clock accident rather than an architectural outcome.
var ErrCancelled = &Trap{Kind: TrapCancelled, Detail: "cancelled"}

// TrapKind classifies architectural traps. The emulator never panics on
// guest-controlled input: every abnormal condition a program (or an injected
// fault) can provoke terminates the machine with a *Trap carrying one of
// these kinds, so harnesses can tell an ACF catch from a wild crash from a
// hung trial.
type TrapKind uint8

// Trap kinds.
const (
	// TrapNone is the zero kind; it never appears in a raised trap.
	TrapNone TrapKind = iota
	// TrapACFViolation: an ACF check failed (sys 3, or a jump to the kernel
	// trap vector at address 0) and the cause could not be refined further.
	TrapACFViolation
	// TrapOutOfSegment: an access escaped its legal segment — raised when an
	// MFI-style check fires on a memory or jump trigger (the trap records the
	// faulting address), or when an indirect jump leaves the text image.
	TrapOutOfSegment
	// TrapIllegalInst: an undefined or unimplemented opcode reached execute.
	TrapIllegalInst
	// TrapBadCodeword: a DISE codeword reached execute unexpanded (no engine,
	// or no production/dictionary entry claims it).
	TrapBadCodeword
	// TrapUnaligned: a strict-alignment machine saw a misaligned data access.
	TrapUnaligned
	// TrapRTCorrupt: a replacement sequence was structurally bad — an invalid
	// opcode inside RT-supplied instructions, or a malformed expansion.
	TrapRTCorrupt
	// TrapPCOutOfText: sequential fetch ran off the text image.
	TrapPCOutOfText
	// TrapBadSyscall: a sys instruction carried an unknown service code.
	TrapBadSyscall
	// TrapBudget: the dynamic instruction budget was exhausted.
	TrapBudget
	// TrapWatchdog: the cycle-level scheduler's forward-progress cap expired.
	TrapWatchdog
	// TrapInternal: a host-side invariant violation was converted to an error
	// at a recover boundary instead of crashing the process.
	TrapInternal
	// TrapCancelled: the run's context was cancelled or its deadline expired
	// before the stream completed. The trap's Cause carries the context
	// error, so errors.Is against context.Canceled/DeadlineExceeded works.
	TrapCancelled

	// NumTrapKinds is the number of defined trap kinds (including TrapNone).
	NumTrapKinds
)

var trapNames = [NumTrapKinds]string{
	TrapNone:         "none",
	TrapACFViolation: "acf-violation",
	TrapOutOfSegment: "out-of-segment",
	TrapIllegalInst:  "illegal-inst",
	TrapBadCodeword:  "bad-codeword",
	TrapUnaligned:    "unaligned",
	TrapRTCorrupt:    "rt-corrupt",
	TrapPCOutOfText:  "pc-out-of-text",
	TrapBadSyscall:   "bad-syscall",
	TrapBudget:       "budget",
	TrapWatchdog:     "watchdog",
	TrapInternal:     "internal",
	TrapCancelled:    "cancelled",
}

// String returns the kind's report name.
func (k TrapKind) String() string {
	if int(k) >= len(trapNames) {
		return fmt.Sprintf("trap(%d)", uint8(k))
	}
	return trapNames[k]
}

// Trap is a precise architectural trap: what happened (Kind), where
// (PC:DISEPC — the paper's precise-state pair, §2.1), and, for memory
// events, the faulting address. It implements error; errors.Is matches on
// Kind, and every trap raised by an ACF check additionally matches
// ErrACFViolation, so policy code can ask the coarse question ("did an ACF
// catch this?") or the precise one ("was it an out-of-segment store?").
type Trap struct {
	Kind   TrapKind
	PC     uint64 // trigger PC of the faulting dynamic instruction
	DISEPC int    // offset within the replacement sequence, 0 at app level
	Addr   uint64 // faulting data/target address, when meaningful
	ACF    bool   // raised by an ACF check (sys 3 / kernel trap vector)
	Detail string
	// Cause is the underlying host-side error, when one exists — a
	// TrapCancelled trap carries its context error here, so callers can ask
	// errors.Is(err, context.DeadlineExceeded) through the trap.
	Cause error
}

// Unwrap exposes the underlying cause to errors.Is/As chains.
func (t *Trap) Unwrap() error { return t.Cause }

// Error implements error.
func (t *Trap) Error() string {
	s := fmt.Sprintf("emu: trap %s at pc=%#x", t.Kind, t.PC)
	if t.DISEPC != 0 {
		s += fmt.Sprintf(":%d", t.DISEPC)
	}
	if t.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", t.Addr)
	}
	if t.Detail != "" {
		s += ": " + t.Detail
	}
	return s
}

// Is supports errors.Is: traps match when their kinds agree, and a target of
// kind TrapACFViolation (e.g. the ErrACFViolation sentinel) matches any trap
// raised by an ACF check, however precisely classified.
func (t *Trap) Is(target error) bool {
	o, ok := target.(*Trap)
	if !ok {
		return false
	}
	if o.Kind == TrapACFViolation {
		return t.ACF || t.Kind == TrapACFViolation
	}
	return t.Kind == o.Kind
}
