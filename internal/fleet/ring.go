package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the number of ring points a weight-1 node contributes.
// 64 points per node keeps the max/mean load ratio under 1.25 at small
// fleet sizes (pinned by TestRingBalance) while keeping ring construction
// cheap enough to redo on every SIGHUP reload.
const DefaultVNodes = 64

// point is one virtual node on the ring: a position in the 64-bit hash
// space and the index of the member that owns it.
type point struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over a shard map. Placement is
// deterministic: vnode positions hash only the node ID and vnode index, and
// keys are already SHA-256 digests, so any two parties holding the same map
// compute identical owners and replicas.
type Ring struct {
	points []point
	nodes  []Node
}

// NewRing builds the ring for a validated map. Each node contributes
// DefaultVNodes × max(weight, 1) points at positions derived from
// SHA-256("node-id#vnode-index"), independent of node order in the file.
func NewRing(m *Map) (*Ring, error) {
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("fleet ring: empty map")
	}
	r := &Ring{nodes: append([]Node(nil), m.Nodes...)}
	for i, n := range r.nodes {
		w := n.Weight
		if w <= 0 {
			w = 1
		}
		for v := 0; v < DefaultVNodes*w; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", n.ID, v)))
			r.points = append(r.points, point{hash: binary.BigEndian.Uint64(sum[:8]), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on node ID so equal hash positions (vanishingly rare but
		// possible) still order deterministically across map file orderings.
		return r.nodes[r.points[a].node].ID < r.nodes[r.points[b].node].ID
	})
	return r, nil
}

// Route returns up to n distinct nodes for key in preference order: the
// owner first, then successive distinct nodes walking the ring clockwise.
// The first Replication entries of Route(key, len(nodes)) are the replica
// set; the rest are deterministic fallbacks for routing around failures.
func (r *Ring) Route(key [32]byte, n int) []Node {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := binary.BigEndian.Uint64(key[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Node, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Owner returns the first node on the ring at or after the key's position —
// the member responsible for capturing this equivalence class.
func (r *Ring) Owner(key [32]byte) Node {
	seq := r.Route(key, 1)
	if len(seq) == 0 {
		return Node{}
	}
	return seq[0]
}

// BoundedOwner is the bounded-load variant of Owner: it walks the key's
// preference order and returns the first of the top n candidates whose
// current load (as reported by load, keyed by node ID) is under
// ceil((1+slack) × (total+1) / members). When every candidate is over the
// bound it falls back to the true owner, so routing degrades to plain
// consistent hashing rather than failing.
func (r *Ring) BoundedOwner(key [32]byte, n int, load func(id string) int, slack float64) Node {
	seq := r.Route(key, n)
	if len(seq) == 0 {
		return Node{}
	}
	if load == nil || len(r.nodes) == 1 {
		return seq[0]
	}
	total := 0
	for _, m := range r.nodes {
		total += load(m.ID)
	}
	bound := int(float64(total+1)*(1+slack)/float64(len(r.nodes))) + 1
	for _, cand := range seq {
		if load(cand.ID) < bound {
			return cand
		}
	}
	return seq[0]
}
