package fleet

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func testMap(n int) *Map {
	m := &Map{Epoch: 1, Replication: 2}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, Node{ID: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)})
	}
	return m
}

func testKeys(n int) [][32]byte {
	keys := make([][32]byte, n)
	for i := range keys {
		keys[i] = sha256.Sum256([]byte(fmt.Sprintf("class-%d", i)))
	}
	return keys
}

// TestRingBalance pins the distribution bound the vnode count was chosen
// for: at 3 nodes × 64 vnodes over 10k keys, no node carries more than
// 1.25× the mean load.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(testMap(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(10000)
	for _, k := range keys {
		counts[r.Owner(k).ID]++
	}
	if len(counts) != 3 {
		t.Fatalf("owners spread over %d nodes, want 3: %v", len(counts), counts)
	}
	mean := float64(len(keys)) / 3
	for id, c := range counts {
		if ratio := float64(c) / mean; ratio > 1.25 {
			t.Errorf("node %s owns %d keys (%.3f× mean, bound 1.25)", id, c, ratio)
		}
	}
	t.Logf("balance: %v (mean %.0f)", counts, mean)
}

// TestRingWeight checks that weight scales ring share: a weight-2 node
// should own roughly twice the keys of its weight-1 peers.
func TestRingWeight(t *testing.T) {
	m := testMap(3)
	m.Nodes[0].Weight = 2
	r, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range testKeys(10000) {
		counts[r.Owner(k).ID]++
	}
	heavy := float64(counts["n1"])
	light := float64(counts["n2"]+counts["n3"]) / 2
	if ratio := heavy / light; ratio < 1.5 || ratio > 2.5 {
		t.Errorf("weight-2 node owns %.2f× a weight-1 node, want ≈2: %v", ratio, counts)
	}
}

// TestRingMinimalRemap checks the consistent-hashing contract: growing the
// fleet from 3 to 4 nodes moves well under 40% of keys (ideal is 25%), and
// every key that moved moved to the new node.
func TestRingMinimalRemap(t *testing.T) {
	r3, err := NewRing(testMap(3))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(testMap(4))
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(10000)
	moved, movedElsewhere := 0, 0
	for _, k := range keys {
		before, after := r3.Owner(k).ID, r4.Owner(k).ID
		if before != after {
			moved++
			if after != "n4" {
				movedElsewhere++
			}
		}
	}
	if frac := float64(moved) / float64(len(keys)); frac >= 0.40 {
		t.Errorf("join remapped %.1f%% of keys, want < 40%%", 100*frac)
	}
	if moved < len(keys)/10 {
		t.Errorf("join remapped only %d keys; the new node got no share", moved)
	}
	if movedElsewhere != 0 {
		t.Errorf("%d keys moved between surviving nodes on join, want 0", movedElsewhere)
	}
	t.Logf("remap on 3→4 join: %d/%d keys (%.1f%%)", moved, len(keys), 100*float64(moved)/float64(len(keys)))
}

// TestRingGoldenVectors pins owner and replica selection for fixed keys on
// a fixed 3-node map. Any change to the hashing scheme shows up here as a
// golden diff — placement is a wire-compatibility surface, since clients
// and servers built at different commits must agree on ownership.
func TestRingGoldenVectors(t *testing.T) {
	r, err := NewRing(testMap(3))
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		seed  string
		route string
	}{
		{"class-0", ""},
		{"class-1", ""},
		{"class-2", ""},
		{"class-3", ""},
		{"quickstart", ""},
		{"dhrystone", ""},
	}
	// Golden values: computed once from the frozen scheme and pinned below.
	want := []string{
		"n2 n1 n3",
		"n3 n1 n2",
		"n2 n1 n3",
		"n2 n3 n1",
		"n2 n1 n3",
		"n3 n1 n2",
	}
	for i, g := range golden {
		key := sha256.Sum256([]byte(g.seed))
		seq := r.Route(key, 3)
		got := fmt.Sprintf("%s %s %s", seq[0].ID, seq[1].ID, seq[2].ID)
		if got != want[i] {
			t.Errorf("route(%q) = %q, want %q", g.seed, got, want[i])
		}
	}
}

// TestRingDeterminism checks that node order in the map file does not
// change placement: the ring hashes node IDs, not list positions.
func TestRingDeterminism(t *testing.T) {
	m := testMap(3)
	rev := &Map{Epoch: m.Epoch, Replication: m.Replication,
		Nodes: []Node{m.Nodes[2], m.Nodes[0], m.Nodes[1]}}
	ra, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRing(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		sa, sb := ra.Route(k, 3), rb.Route(k, 3)
		for i := range sa {
			if sa[i].ID != sb[i].ID {
				t.Fatalf("placement depends on map file order: %v vs %v", sa, sb)
			}
		}
	}
}

// TestBoundedOwner checks the bounded-load walk: an overloaded owner is
// skipped in favor of the next replica, and when every candidate is over
// the bound routing falls back to the true owner.
func TestBoundedOwner(t *testing.T) {
	r, err := NewRing(testMap(3))
	if err != nil {
		t.Fatal(err)
	}
	key := sha256.Sum256([]byte("class-0"))
	seq := r.Route(key, 3)
	owner, replica := seq[0].ID, seq[1].ID

	// Balanced load: the owner serves.
	load := map[string]int{"n1": 1, "n2": 1, "n3": 1}
	if got := r.BoundedOwner(key, 3, func(id string) int { return load[id] }, 0.25); got.ID != owner {
		t.Errorf("balanced load routed to %s, want owner %s", got.ID, owner)
	}
	// Overloaded owner: the replica takes it.
	load = map[string]int{owner: 100}
	if got := r.BoundedOwner(key, 3, func(id string) int { return load[id] }, 0.25); got.ID != replica {
		t.Errorf("overloaded owner routed to %s, want replica %s", got.ID, replica)
	}
	// Everyone over the bound: fall back to the owner.
	load = map[string]int{"n1": 100, "n2": 100, "n3": 100}
	if got := r.BoundedOwner(key, 3, func(id string) int { return load[id] }, 0.25); got.ID != owner {
		t.Errorf("uniform overload routed to %s, want owner %s", got.ID, owner)
	}
	// Nil load func degrades to plain Owner.
	if got := r.BoundedOwner(key, 3, nil, 0.25); got.ID != owner {
		t.Errorf("nil load routed to %s, want owner %s", got.ID, owner)
	}
}

// TestParseMap covers validation and defaulting of the membership document.
func TestParseMap(t *testing.T) {
	good := `{"epoch": 7, "nodes": [{"id":"a","addr":"h:1"},{"id":"b","addr":"h:2","weight":2}]}`
	m, err := ParseMap([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 7 || m.Replication != 2 || len(m.Nodes) != 2 {
		t.Errorf("parsed %+v", m)
	}
	if n, ok := m.Node("b"); !ok || n.Weight != 2 {
		t.Errorf("Node(b) = %+v, %v", n, ok)
	}
	if _, ok := m.Node("zz"); ok {
		t.Error("Node(zz) found a ghost member")
	}

	single := `{"nodes": [{"id":"a","addr":"h:1"}], "replication": 3}`
	m, err = ParseMap([]byte(single))
	if err != nil {
		t.Fatal(err)
	}
	if m.Replication != 1 {
		t.Errorf("replication not capped at node count: %d", m.Replication)
	}

	for _, bad := range []string{
		`{`,
		`{"nodes": []}`,
		`{"nodes": [{"id":"","addr":"h:1"}]}`,
		`{"nodes": [{"id":"a","addr":""}]}`,
		`{"nodes": [{"id":"a","addr":"h:1","weight":-1}]}`,
		`{"nodes": [{"id":"a","addr":"h:1"},{"id":"a","addr":"h:2"}]}`,
	} {
		if _, err := ParseMap([]byte(bad)); err == nil {
			t.Errorf("ParseMap accepted %s", bad)
		}
	}
}
