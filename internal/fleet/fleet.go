// Package fleet is the shard-map and consistent-hash layer of the multi-node
// serving tier: a static JSON membership file names the daemons (node ID,
// address, weight) under an epoch, and a virtual-node hash ring maps the
// server's SHA-256 trace-cache key to a deterministic owner plus R−1
// replicas. Every placement decision is a pure function of (map, key), so
// clients and servers that share a map file agree on ownership without any
// coordination protocol.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
)

// Node is one daemon in the shard map. Weight scales its share of the ring
// (virtual-node count); zero means the default weight of 1.
type Node struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Weight int    `json:"weight,omitempty"`
}

// Map is the fleet membership document: a monotonically increasing epoch
// (bumped on every edit; daemons reload on SIGHUP and report it via
// /v1/membership), the replication factor R, and the member nodes.
type Map struct {
	Epoch       int64  `json:"epoch"`
	Replication int    `json:"replication,omitempty"`
	Nodes       []Node `json:"nodes"`
}

// ParseMap decodes and validates a shard-map document. Replication defaults
// to min(2, len(nodes)) and is capped at the node count, so a map never
// promises more copies than there are members.
func ParseMap(data []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("fleet map: %w", err)
	}
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("fleet map: no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("fleet map: node %d has empty id", i)
		}
		if n.Addr == "" {
			return nil, fmt.Errorf("fleet map: node %q has empty addr", n.ID)
		}
		if n.Weight < 0 {
			return nil, fmt.Errorf("fleet map: node %q has negative weight", n.ID)
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("fleet map: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	if m.Replication <= 0 {
		m.Replication = 2
	}
	if m.Replication > len(m.Nodes) {
		m.Replication = len(m.Nodes)
	}
	return &m, nil
}

// LoadMap reads and parses a shard-map file.
func LoadMap(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseMap(data)
}

// Node returns the member with the given ID, or false if the map does not
// contain it.
func (m *Map) Node(id string) (Node, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}
