package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

func storeConfig(dir string) Config {
	cfg := quietConfig()
	cfg.StoreDir = dir
	return cfg
}

func getHealthz(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestStoreWarmRestart is the headline persistence contract: a fresh server
// over a populated store serves the class from disk — no recapture — and the
// result bytes equal the original cold capture's exactly.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()

	ts1, s1 := newTestServer(t, storeConfig(dir))
	_, _, cold := post(t, ts1, SmokeRequest())
	if cold.Outcome != "done" || cold.Cached {
		t.Fatalf("cold run: outcome %q cached %v", cold.Outcome, cold.Cached)
	}
	st := getStats(t, ts1)
	if st.Cache.Misses != 1 || st.Cache.DiskWrites != 1 || !st.Cache.DiskEnabled {
		t.Fatalf("cold stats: %+v", st.Cache)
	}
	s1.Drain()
	ts1.Close()

	ts2, _ := newTestServer(t, storeConfig(dir))
	_, _, warm := post(t, ts2, SmokeRequest())
	if warm.Outcome != "done" || !warm.Cached {
		t.Fatalf("warm run: outcome %q cached %v", warm.Outcome, warm.Cached)
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Fatalf("disk-served result differs from cold capture:\n%s\nvs\n%s", cold.Result, warm.Result)
	}
	st = getStats(t, ts2)
	if st.Cache.DiskHits != 1 || st.Cache.Misses != 0 || st.Cache.DiskEntries != 1 {
		t.Fatalf("warm stats: %+v", st.Cache)
	}

	// A second submission hits the memory tier, not the disk again.
	_, _, again := post(t, ts2, SmokeRequest())
	if !again.Cached || !bytes.Equal(cold.Result, again.Result) {
		t.Fatalf("memory re-hit: cached %v, bytes equal %v", again.Cached, bytes.Equal(cold.Result, again.Result))
	}
	if st = getStats(t, ts2); st.Cache.Hits != 1 || st.Cache.DiskHits != 1 {
		t.Fatalf("re-hit stats: %+v", st.Cache)
	}
}

// TestStoreDegradedServing injects runtime disk faults and requires the
// server to keep answering correctly from memory, report degraded on
// /healthz (still 200) and /stats, and re-attach once the disk heals.
func TestStoreDegradedServing(t *testing.T) {
	fsys := fault.NewFS(store.OSFS{}, fault.DisarmedPlan())
	cfg := storeConfig(t.TempDir())
	cfg.StoreFS = fsys
	cfg.StoreProbe = 5 * time.Millisecond
	// A 1-byte memory budget: any later class evicts the earlier one, so a
	// resubmission must go back to the disk — which lets the test aim a
	// read fault at a real disk read.
	cfg.CacheBytes = 1
	ts, _ := newTestServer(t, cfg)

	if code, body := getHealthz(t, ts); code != http.StatusOK || body["store"] != "ok" || body["degraded"] != false {
		t.Fatalf("healthy healthz: %d %v", code, body)
	}

	// Write-side failure (ENOSPC): the first capture's write-through fails,
	// but the job itself still completes and the class serves from memory.
	fsys.FailWrites(fault.ErrInjectedENOSPC)
	_, _, r := post(t, ts, SmokeRequest())
	if r.Outcome != "done" {
		t.Fatalf("job under ENOSPC: %q %s", r.Outcome, r.Error)
	}
	code, body := getHealthz(t, ts)
	if code != http.StatusOK || body["store"] != "degraded" || body["degraded"] != true {
		t.Fatalf("degraded healthz: %d %v", code, body)
	}
	st := getStats(t, ts)
	if !st.Cache.Degraded || st.Cache.DegradedEvents != 1 || st.Cache.DiskIOErrors == 0 {
		t.Fatalf("degraded stats: %+v", st.Cache)
	}
	if _, _, r = post(t, ts, SmokeRequest()); !r.Cached {
		t.Fatalf("memory hit while degraded: cached=%v", r.Cached)
	}

	// Heal the disk; the probe loop must re-attach without a restart.
	fsys.Heal()
	waitStats(t, ts, "disk re-attach", func(sp *StatsPayload) bool { return !sp.Cache.Degraded })
	if _, body = getHealthz(t, ts); body["store"] != "ok" {
		t.Fatalf("healed healthz: %v", body)
	}

	// Populate the disk: completing the budget-100 class evicts the smoke
	// class from the 1-byte memory tier, and recapturing the smoke class
	// writes it through and evicts the budget-100 class in turn — leaving
	// the budget-100 class on disk only.
	other := SmokeRequest()
	other.BudgetInsts = 100
	post(t, ts, other)
	post(t, ts, SmokeRequest())
	waitStats(t, ts, "disk write-through", func(sp *StatsPayload) bool { return sp.Cache.DiskWrites >= 2 })

	// Read-side failure (EIO): the disk-only class forces a disk read,
	// which fails, degrades the tier (second outage) — and the job still
	// answers via recapture.
	fsys.FailReads(fault.ErrInjectedEIO)
	if _, _, r = post(t, ts, other); r.Outcome != "done" {
		t.Fatalf("job under EIO: %q %s", r.Outcome, r.Error)
	}
	st = getStats(t, ts)
	if !st.Cache.Degraded || st.Cache.DegradedEvents != 2 {
		t.Fatalf("second-outage stats: %+v", st.Cache)
	}
	fsys.Heal()
	waitStats(t, ts, "second re-attach", func(sp *StatsPayload) bool { return !sp.Cache.Degraded })

	// Post-recovery, new classes persist again.
	req2 := SmokeRequest()
	req2.BudgetInsts = 200
	post(t, ts, req2)
	before := st.Cache.DiskWrites
	if st = getStats(t, ts); st.Cache.DiskWrites <= before {
		t.Fatalf("no writes after recovery: %+v", st.Cache)
	}
}

// TestStoreScrubAtStartup plants corruption in a populated store directory
// and requires the next server to quarantine it and recapture cleanly.
func TestStoreScrubAtStartup(t *testing.T) {
	dir := t.TempDir()
	ts1, s1 := newTestServer(t, storeConfig(dir))
	_, _, cold := post(t, ts1, SmokeRequest())
	s1.Drain()
	ts1.Close()

	corruptOneEntry(t, dir)

	ts2, _ := newTestServer(t, storeConfig(dir))
	_, _, r := post(t, ts2, SmokeRequest())
	if r.Outcome != "done" || r.Cached {
		t.Fatalf("post-scrub run: outcome %q cached %v (corrupt entry must be a miss)", r.Outcome, r.Cached)
	}
	if !bytes.Equal(cold.Result, r.Result) {
		t.Fatal("recaptured result differs from the original")
	}
	st := getStats(t, ts2)
	if st.Cache.DiskQuarantined != 1 || st.Cache.Misses != 1 || st.Cache.DiskEntries != 1 {
		t.Fatalf("post-scrub stats: %+v", st.Cache)
	}
}

// corruptOneEntry flips one payload byte of one stored entry file.
func corruptOneEntry(t *testing.T, dir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.dse"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no entries to corrupt in %s (%v)", dir, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
}
