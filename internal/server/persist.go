package server

// The persistent-tier codec: what one trace-cache entry looks like as a
// store payload. The payload wraps the serialized dynamic trace
// (trace.MarshalBinary) with the capture run's DISE engine counters, which
// the memory tier keeps alongside the trace — a disk hit must rebuild both
// to answer byte-identically to the original capture. Integrity (hash,
// length, key binding) is the store's job; this layer only needs a version
// gate and a structural check, and it treats any defect as "not a hit",
// never as data.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

const (
	persistMagic   = "DSP1"
	persistVersion = 1
	// persistHeader: magic + version + 9 engine counters.
	persistHeader = 4 + 4 + 9*8
)

// encodePersist renders the disk payload of one completed capture.
func encodePersist(tr *trace.Trace, es core.EngineStats) ([]byte, error) {
	blob, err := tr.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, persistHeader, persistHeader+len(blob))
	copy(buf[0:4], persistMagic)
	binary.LittleEndian.PutUint32(buf[4:8], persistVersion)
	for i, v := range [9]int64{
		es.Fetched, es.Expansions, es.Inserted, es.PTMisses, es.RTMisses,
		es.Composed, es.Stall, es.MemoHits, es.MemoMisses,
	} {
		binary.LittleEndian.PutUint64(buf[8+8*i:16+8*i], uint64(v))
	}
	return append(buf, blob...), nil
}

// decodePersist parses a disk payload back into a replayable trace and its
// engine counters. Errors mean the payload is unusable (version skew, inner
// decode failure); the caller serves a miss and recaptures.
func decodePersist(data []byte) (*trace.Trace, core.EngineStats, error) {
	var es core.EngineStats
	if len(data) < persistHeader {
		return nil, es, fmt.Errorf("server: persisted entry of %d bytes, shorter than the %d-byte header", len(data), persistHeader)
	}
	if string(data[0:4]) != persistMagic {
		return nil, es, fmt.Errorf("server: persisted entry has magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != persistVersion {
		return nil, es, fmt.Errorf("server: persisted entry has unknown version %d", v)
	}
	for i, dst := range [9]*int64{
		&es.Fetched, &es.Expansions, &es.Inserted, &es.PTMisses, &es.RTMisses,
		&es.Composed, &es.Stall, &es.MemoHits, &es.MemoMisses,
	} {
		*dst = int64(binary.LittleEndian.Uint64(data[8+8*i : 16+8*i]))
	}
	tr, err := trace.UnmarshalBinary(data[persistHeader:])
	if err != nil {
		return nil, es, err
	}
	return tr, es, nil
}
