package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postBatch submits a batch and decodes the ndjson stream into its cell
// lines and terminal summary. Cell results stay raw for byte-identity
// checks. A non-200 answer comes back as the single-job envelope instead.
type rawBatchCell struct {
	Index   int             `json:"index"`
	Outcome string          `json:"outcome"`
	Result  json.RawMessage `json:"result"`
}

func postBatch(t *testing.T, ts *httptest.Server, req *BatchRequest) (int, []rawBatchCell, *BatchSummary, *rawResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope rawResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("decoding non-200 batch envelope: %v", err)
		}
		return resp.StatusCode, nil, nil, &envelope
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch Content-Type = %q, want application/x-ndjson", ct)
	}
	var cells []rawBatchCell
	var summary *BatchSummary
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Cell    *rawBatchCell `json:"cell"`
			Summary *BatchSummary `json:"summary"`
		}
		if err := dec.Decode(&line); err != nil {
			break
		}
		switch {
		case summary != nil:
			t.Fatal("batch stream continued past the summary line")
		case line.Cell != nil:
			cells = append(cells, *line.Cell)
		case line.Summary != nil:
			summary = line.Summary
		default:
			t.Fatal("batch line with neither cell nor summary")
		}
	}
	if summary == nil {
		t.Fatal("batch stream ended without a summary line")
	}
	return resp.StatusCode, cells, summary, nil
}

// TestBatchByteIdentity is the tentpole acceptance check, table-driven: a
// sweep of timing configurations served as one batch must yield, cell for
// cell, the exact bytes of the equivalent single /v1/jobs responses —
// whether the batch captured the stream or the singles did first.
func TestBatchByteIdentity(t *testing.T) {
	sweep := func() []SubmitRequest {
		var jobs []SubmitRequest
		add := func(mut func(*SubmitRequest)) {
			r := SmokeRequest()
			mut(r)
			jobs = append(jobs, *r)
		}
		add(func(r *SubmitRequest) {})
		add(func(r *SubmitRequest) { r.Machine.Width = 1 })
		add(func(r *SubmitRequest) { r.Machine.Width = 8; r.Machine.ROB = 256 })
		add(func(r *SubmitRequest) { r.Machine.DiseMode = "stall" })
		add(func(r *SubmitRequest) { r.Machine.DiseMode = "pipe"; r.Machine.PipeDepth = 20 })
		add(func(r *SubmitRequest) { r.Machine.ICacheKB = -1; r.Machine.DCacheKB = 4 })
		add(func(r *SubmitRequest) { r.Engine.MissPenalty = 60 })
		add(func(r *SubmitRequest) { r.Engine.MissPenalty = 60; r.Machine.Width = 8 })
		add(func(r *SubmitRequest) { r.Engine.ComposePenalty = 300; r.Disasm = true; r.TraceN = 6 })
		return jobs
	}

	for _, tc := range []struct {
		name       string
		batchFirst bool
		wantCache  string
	}{
		{"batch captures", true, "capture"},
		{"batch hits memory", false, "memory"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts, _ := newTestServer(t, quietConfig())
			jobs := sweep()

			single := make([]json.RawMessage, len(jobs))
			runSingles := func() {
				for i := range jobs {
					status, _, resp := post(t, ts, &jobs[i])
					if status != http.StatusOK {
						t.Fatalf("single job %d: status %d (%s)", i, status, resp.Error)
					}
					single[i] = resp.Result
				}
			}
			if !tc.batchFirst {
				runSingles()
			}

			status, cells, sum, _ := postBatch(t, ts, &BatchRequest{Jobs: jobs})
			if status != http.StatusOK {
				t.Fatalf("batch status %d", status)
			}
			if tc.batchFirst {
				runSingles()
			}

			if len(cells) != len(jobs) {
				t.Fatalf("batch streamed %d cells, want %d", len(cells), len(jobs))
			}
			seen := make(map[int]bool)
			for _, c := range cells {
				if seen[c.Index] {
					t.Fatalf("cell %d streamed twice", c.Index)
				}
				seen[c.Index] = true
				if c.Outcome != "done" {
					t.Errorf("cell %d outcome %q, want done", c.Index, c.Outcome)
				}
				if !bytes.Equal(c.Result, single[c.Index]) {
					t.Errorf("cell %d not byte-identical to its single-job answer:\nbatch:  %s\nsingle: %s",
						c.Index, c.Result, single[c.Index])
				}
			}
			if sum.Cells != len(jobs) || sum.Done != len(jobs) || sum.Trapped != 0 || sum.Aborted != 0 {
				t.Errorf("summary ledger %+v does not reconcile with %d done cells", sum, len(jobs))
			}
			if sum.Outcome != "done" || sum.Cache != tc.wantCache {
				t.Errorf("summary outcome=%q cache=%q, want done/%s", sum.Outcome, sum.Cache, tc.wantCache)
			}

			sp := getStats(t, ts)
			if sp.Batches.Batches != 1 || sp.Batches.Cells != int64(len(jobs)) ||
				sp.Batches.CellsDone != int64(len(jobs)) || sp.Batches.CellsTrapped != 0 || sp.Batches.CellsAborted != 0 {
				t.Errorf("batch counters %+v, want 1 batch / %d done cells", sp.Batches, len(jobs))
			}
			if sp.Batches.StreamBytes == 0 || sp.Batches.CellsPerBatch.Count != 1 {
				t.Errorf("stream_bytes=%d cells_per_batch.count=%d, want bytes > 0 and one observation",
					sp.Batches.StreamBytes, sp.Batches.CellsPerBatch.Count)
			}
			// Reconciliation with the jobs counters: every batch cell is a
			// served job, on top of the len(jobs) singles.
			if want := int64(2 * len(jobs)); sp.Jobs.Done != want {
				t.Errorf("jobs.done = %d, want %d (singles + batch cells)", sp.Jobs.Done, want)
			}
			// One capture total, whichever side ran first.
			if sp.Cache.Misses != 1 {
				t.Errorf("cache misses = %d, want 1 (one shared capture)", sp.Cache.Misses)
			}
		})
	}
}

// TestBatchTrappedCells streams a sweep whose shared stream ends in a
// budget trap: every cell must answer trapped, with the ledger and the
// trapped counters agreeing.
func TestBatchTrappedCells(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())
	job := SubmitRequest{Bench: "gzip", BudgetInsts: 20000}
	wide := job
	wide.Machine.Width = 8
	status, cells, sum, _ := postBatch(t, ts, &BatchRequest{Jobs: []SubmitRequest{job, wide}})
	if status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	for _, c := range cells {
		if c.Outcome != "trapped" {
			t.Errorf("cell %d outcome %q, want trapped", c.Index, c.Outcome)
		}
	}
	if sum.Trapped != 2 || sum.Done != 0 || sum.Outcome != "done" {
		t.Errorf("summary %+v, want 2 trapped cells in a completed batch", sum)
	}
	if sp := getStats(t, ts); sp.Batches.CellsTrapped != 2 || sp.Jobs.Trapped != 2 {
		t.Errorf("trapped counters: batch=%d jobs=%d, want 2/2", sp.Batches.CellsTrapped, sp.Jobs.Trapped)
	}
}

// TestBatchValidation walks the admission table: malformed sweeps are 400s
// with a cell-indexed diagnostic, and a full queue is a 429 that does not
// touch the batch counters.
func TestBatchValidation(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())
	base := func() SubmitRequest { return *SmokeRequest() }

	cases := []struct {
		name string
		req  *BatchRequest
	}{
		{"no jobs", &BatchRequest{}},
		{"negative timeout", &BatchRequest{Jobs: []SubmitRequest{base()}, TimeoutMS: -1}},
		{"cell timeout", &BatchRequest{Jobs: []SubmitRequest{{Asm: SmokeAsm, TimeoutMS: 10}}}},
		{"cell watchdog", &BatchRequest{Jobs: []SubmitRequest{{Asm: SmokeAsm, MaxCycles: 1000}}}},
		{"bad cell", &BatchRequest{Jobs: []SubmitRequest{{Asm: "not a program"}}}},
		{"budget mismatch", &BatchRequest{Jobs: []SubmitRequest{base(), {Asm: SmokeAsm, Prods: SmokeProds, BudgetInsts: 777}}}},
		{"program mismatch", &BatchRequest{Jobs: []SubmitRequest{base(), {Bench: "gzip"}}}},
		{"geometry mismatch", &BatchRequest{Jobs: []SubmitRequest{base(), {Asm: SmokeAsm, Prods: SmokeProds, Engine: EngineSpec{RTPerfect: true}}}}},
		{"regs mismatch", &BatchRequest{Jobs: []SubmitRequest{base(), {Asm: SmokeAsm, Prods: SmokeProds, Regs: map[string]uint64{"$dr1": 7}}}}},
		{"bad reg name", &BatchRequest{Jobs: []SubmitRequest{{Asm: SmokeAsm, Regs: map[string]uint64{"$r1": 7}}}}},
	}
	over := &BatchRequest{}
	for range maxBatchCells + 1 {
		over.Jobs = append(over.Jobs, base())
	}
	cases = append(cases, struct {
		name string
		req  *BatchRequest
	}{"too many cells", over})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, _, envelope := postBatch(t, ts, tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", status)
			}
			if envelope.Outcome != "invalid" || envelope.Error == "" {
				t.Fatalf("envelope %+v, want an invalid outcome with a diagnostic", envelope)
			}
		})
	}
	if sp := getStats(t, ts); sp.Batches.Batches != 0 || sp.Batches.Cells != 0 {
		t.Errorf("rejected batches leaked into the admitted counters: %+v", sp.Batches)
	}
}

// TestBatchCancelDuringCapture extends the quarantine coverage to batches:
// a client that disconnects while the batch is still capturing frees the
// worker, aborts every cell, and leaves nothing in the cache — the
// truncated stream is never stored.
func TestBatchCancelDuringCapture(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())

	req := &BatchRequest{Jobs: []SubmitRequest{
		{Asm: spinAsm, BudgetInsts: 1 << 40},
		{Asm: spinAsm, BudgetInsts: 1 << 40, Machine: MachineSpec{Width: 8}},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batches", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitStats(t, ts, "batch capturing", func(sp *StatsPayload) bool { return sp.Running == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled batch request returned a response, want a transport error")
	}
	waitStats(t, ts, "worker freed", func(sp *StatsPayload) bool { return sp.Running == 0 })

	sp := getStats(t, ts)
	if sp.Cache.Entries != 0 || sp.Cache.Misses != 0 {
		t.Errorf("cancelled capture was stored: %+v", sp.Cache)
	}
	if sp.Batches.CellsAborted != 2 || sp.Jobs.Cancelled != 2 {
		t.Errorf("aborted accounting: cells_aborted=%d jobs.cancelled=%d, want 2/2",
			sp.Batches.CellsAborted, sp.Jobs.Cancelled)
	}
	if sp.Batches.Cells != sp.Batches.CellsDone+sp.Batches.CellsTrapped+sp.Batches.CellsAborted {
		t.Errorf("cell ledger does not reconcile: %+v", sp.Batches)
	}

	// The class is intact: a fresh, affordable batch in a different class
	// (small budget) is served normally afterwards — the slot is truly free.
	status, cells, _, _ := postBatch(t, ts, &BatchRequest{Jobs: []SubmitRequest{{Asm: spinAsm, BudgetInsts: 1000}}})
	if status != http.StatusOK || len(cells) != 1 || cells[0].Outcome != "trapped" {
		t.Fatalf("post-cancel batch: status=%d cells=%d, want a served trapped cell", status, len(cells))
	}
}

// TestBatchTimeout pins the pre-stream failure path: a batch whose capture
// outlives its deadline answers a plain 504 envelope (no ndjson), with all
// cells aborted into the timeout counter.
func TestBatchTimeout(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())
	req := &BatchRequest{
		Jobs:      []SubmitRequest{{Asm: spinAsm, BudgetInsts: 1 << 40}},
		TimeoutMS: 1,
	}
	status, _, _, envelope := postBatch(t, ts, req)
	if status != http.StatusGatewayTimeout || envelope.Outcome != "timeout" {
		t.Fatalf("status=%d outcome=%q, want 504 timeout", status, envelope.Outcome)
	}
	if sp := getStats(t, ts); sp.Batches.CellsAborted != 1 || sp.Jobs.TimedOut != 1 {
		t.Errorf("timeout accounting: cells_aborted=%d jobs.timeout=%d, want 1/1",
			sp.Batches.CellsAborted, sp.Jobs.TimedOut)
	}
}

// TestBatchDrainRemnant checks the drain path for batches: a queued batch
// is failed with a clean 503 envelope and its cells land in the aborted /
// unavailable ledgers, mirroring TestDrainUnderLoad for single jobs.
func TestBatchDrainRemnant(t *testing.T) {
	cfg := quietConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 4
	ts, s := newTestServer(t, cfg)

	// Occupy the worker with a budget-bounded single job.
	inflight := make(chan int, 1)
	go func() {
		st, _, _ := post(t, ts, &SubmitRequest{Asm: spinAsm, BudgetInsts: 50_000_000})
		inflight <- st
	}()
	waitStats(t, ts, "worker busy", func(sp *StatsPayload) bool { return sp.Running == 1 })

	type batchRes struct {
		status   int
		envelope *rawResponse
	}
	queued := make(chan batchRes, 1)
	go func() {
		st, _, _, envelope := postBatch(t, ts, &BatchRequest{
			Jobs:      []SubmitRequest{*SmokeRequest(), *SmokeRequest(), *SmokeRequest()},
			TimeoutMS: 60_000,
		})
		queued <- batchRes{st, envelope}
	}()
	waitStats(t, ts, "batch queued", func(sp *StatsPayload) bool { return sp.QueueDepth == 1 })

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()

	if r := <-queued; r.status != http.StatusServiceUnavailable || r.envelope.Outcome != "unavailable" {
		t.Errorf("queued batch: status=%d outcome=%q, want 503 unavailable", r.status, r.envelope.Outcome)
	}
	<-inflight
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return")
	}
	if sp := getStats(t, ts); sp.Batches.CellsAborted != 3 || sp.Jobs.Unavail < 3 {
		t.Errorf("drain accounting: cells_aborted=%d jobs.unavailable=%d, want 3 and >= 3",
			sp.Batches.CellsAborted, sp.Jobs.Unavail)
	}
}

// TestRegsPresets pins the new dedicated-register preset field end to end:
// presets change the executed stream, split the cache class, and are
// byte-identical between the batch and single paths.
func TestRegsPresets(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())

	// $dr1 seeds the smoke program's counter productions only if the prods
	// read it; here it is enough that the preset splits the class.
	plain := SmokeRequest()
	preset := SmokeRequest()
	preset.Regs = map[string]uint64{"$dr1": 42}

	if st, _, r := post(t, ts, plain); st != http.StatusOK || r.Cached {
		t.Fatalf("plain: status=%d cached=%v", st, r.Cached)
	}
	if st, _, r := post(t, ts, preset); st != http.StatusOK || r.Cached {
		t.Fatalf("preset must be its own class: status=%d cached=%v", st, r.Cached)
	}
	if st, _, r := post(t, ts, preset); st != http.StatusOK || !r.Cached {
		t.Fatalf("preset repeat: status=%d cached=%v, want a hit", st, r.Cached)
	}

	status, cells, _, _ := postBatch(t, ts, &BatchRequest{Jobs: []SubmitRequest{*preset}})
	if status != http.StatusOK || len(cells) != 1 {
		t.Fatalf("preset batch: status=%d cells=%d", status, len(cells))
	}
	st, _, singleResp := post(t, ts, preset)
	if st != http.StatusOK {
		t.Fatal("preset single re-post failed")
	}
	if !bytes.Equal(cells[0].Result, singleResp.Result) {
		t.Errorf("preset batch cell differs from single answer:\nbatch:  %s\nsingle: %s",
			cells[0].Result, singleResp.Result)
	}
}

// TestBatchPenaltyGroups drives one batch whose cells disagree on RT
// penalties — forcing multiple record walks over the shared capture — and
// checks the penalty scaling against the single-job contract.
func TestBatchPenaltyGroups(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())
	base := SmokeRequest()
	doubled := SmokeRequest()
	doubled.Engine.MissPenalty = 60
	status, cells, sum, _ := postBatch(t, ts, &BatchRequest{Jobs: []SubmitRequest{*base, *doubled}})
	if status != http.StatusOK || sum.Done != 2 {
		t.Fatalf("penalty batch: status=%d summary=%+v", status, sum)
	}
	var p [2]ResultPayload
	for _, c := range cells {
		if err := json.Unmarshal(c.Result, &p[c.Index]); err != nil {
			t.Fatal(err)
		}
	}
	if p[1].DiseStalls != 2*p[0].DiseStalls {
		t.Errorf("doubled miss penalty across groups: stalls %d vs %d", p[1].DiseStalls, p[0].DiseStalls)
	}
	if sp := getStats(t, ts); sp.Cache.Misses != 1 {
		t.Errorf("penalty groups recaptured: %d misses, want 1", sp.Cache.Misses)
	}
}
