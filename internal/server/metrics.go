package server

import (
	"sync/atomic"

	"repro/internal/stats"
)

// metrics aggregates the serving-layer counters behind /stats. Outcome
// counters are monotonic; queue depth and running come from the scheduler's
// gauges at snapshot time.
type metrics struct {
	done      atomic.Int64 // clean architectural halt
	trapped   atomic.Int64 // ran to completion with an architectural trap
	invalid   atomic.Int64 // rejected at validation (400)
	rejected  atomic.Int64 // queue full (429)
	unavail   atomic.Int64 // draining (503)
	timedOut  atomic.Int64 // job deadline expired (504)
	cancelled atomic.Int64 // client went away mid-job

	compileLat stats.Histogram // request decode+compile, µs
	queueLat   stats.Histogram // admission to worker pickup, µs
	runLat     stats.Histogram // simulation (capture/replay/live), µs

	// Batch counters. An admitted batch bumps batches/batchCells once; every
	// admitted cell then lands in exactly one of cellsDone, cellsTrapped, or
	// cellsAborted, so batchCells == cellsDone + cellsTrapped + cellsAborted
	// at rest. Done and trapped cells also bump the jobs done/trapped
	// counters (a cell is a served job); aborted cells bump the jobs counter
	// of the batch's failure outcome. Batch admission failures count once,
	// like a single job's.
	batches       atomic.Int64
	batchCells    atomic.Int64
	cellsDone     atomic.Int64
	cellsTrapped  atomic.Int64
	cellsAborted  atomic.Int64
	streamBytes   atomic.Int64    // ndjson bytes written by /v1/batches
	cellsPerBatch stats.Histogram // admitted batch sizes
}

// JobStats counts finished jobs by outcome.
type JobStats struct {
	Done      int64 `json:"done"`
	Trapped   int64 `json:"trapped"`
	Invalid   int64 `json:"invalid"`
	Rejected  int64 `json:"rejected"`
	Unavail   int64 `json:"unavailable"`
	TimedOut  int64 `json:"timeout"`
	Cancelled int64 `json:"cancelled"`
}

// LatencyStats holds the per-stage latency histograms, in microseconds.
type LatencyStats struct {
	CompileUS stats.HistSnapshot `json:"compile_us"`
	QueueUS   stats.HistSnapshot `json:"queue_us"`
	RunUS     stats.HistSnapshot `json:"run_us"`
}

// BatchStats counts /v1/batches work. batch_cells == cells_done +
// cells_trapped + cells_aborted once all admitted batches have finished;
// done and trapped cells are also counted in the jobs done/trapped totals.
type BatchStats struct {
	Batches       int64              `json:"batches"`
	Cells         int64              `json:"batch_cells"`
	CellsDone     int64              `json:"cells_done"`
	CellsTrapped  int64              `json:"cells_trapped"`
	CellsAborted  int64              `json:"cells_aborted"`
	StreamBytes   int64              `json:"stream_bytes"`
	CellsPerBatch stats.HistSnapshot `json:"cells_per_batch"`
}

// StatsPayload is the GET /stats response body.
type StatsPayload struct {
	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	Running    int  `json:"running"`
	Workers    int  `json:"workers"`
	Draining   bool `json:"draining"`

	Jobs    JobStats     `json:"jobs"`
	Batches BatchStats   `json:"batches"`
	Cache   CacheStats   `json:"cache"`
	Fleet   FleetStats   `json:"fleet"`
	Latency LatencyStats `json:"latency"`
}

func (m *metrics) jobs() JobStats {
	return JobStats{
		Done:      m.done.Load(),
		Trapped:   m.trapped.Load(),
		Invalid:   m.invalid.Load(),
		Rejected:  m.rejected.Load(),
		Unavail:   m.unavail.Load(),
		TimedOut:  m.timedOut.Load(),
		Cancelled: m.cancelled.Load(),
	}
}

func (m *metrics) batchStats() BatchStats {
	return BatchStats{
		Batches:       m.batches.Load(),
		Cells:         m.batchCells.Load(),
		CellsDone:     m.cellsDone.Load(),
		CellsTrapped:  m.cellsTrapped.Load(),
		CellsAborted:  m.cellsAborted.Load(),
		StreamBytes:   m.streamBytes.Load(),
		CellsPerBatch: m.cellsPerBatch.Snapshot(),
	}
}

func (m *metrics) latency() LatencyStats {
	return LatencyStats{
		CompileUS: m.compileLat.Snapshot(),
		QueueUS:   m.queueLat.Snapshot(),
		RunUS:     m.runLat.Snapshot(),
	}
}
