package server

import (
	"sync/atomic"

	"repro/internal/stats"
)

// metrics aggregates the serving-layer counters behind /stats. Outcome
// counters are monotonic; queue depth and running come from the scheduler's
// gauges at snapshot time.
type metrics struct {
	done      atomic.Int64 // clean architectural halt
	trapped   atomic.Int64 // ran to completion with an architectural trap
	invalid   atomic.Int64 // rejected at validation (400)
	rejected  atomic.Int64 // queue full (429)
	unavail   atomic.Int64 // draining (503)
	timedOut  atomic.Int64 // job deadline expired (504)
	cancelled atomic.Int64 // client went away mid-job

	compileLat stats.Histogram // request decode+compile, µs
	queueLat   stats.Histogram // admission to worker pickup, µs
	runLat     stats.Histogram // simulation (capture/replay/live), µs
}

// JobStats counts finished jobs by outcome.
type JobStats struct {
	Done      int64 `json:"done"`
	Trapped   int64 `json:"trapped"`
	Invalid   int64 `json:"invalid"`
	Rejected  int64 `json:"rejected"`
	Unavail   int64 `json:"unavailable"`
	TimedOut  int64 `json:"timeout"`
	Cancelled int64 `json:"cancelled"`
}

// LatencyStats holds the per-stage latency histograms, in microseconds.
type LatencyStats struct {
	CompileUS stats.HistSnapshot `json:"compile_us"`
	QueueUS   stats.HistSnapshot `json:"queue_us"`
	RunUS     stats.HistSnapshot `json:"run_us"`
}

// StatsPayload is the GET /stats response body.
type StatsPayload struct {
	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	Running    int  `json:"running"`
	Workers    int  `json:"workers"`
	Draining   bool `json:"draining"`

	Jobs    JobStats     `json:"jobs"`
	Cache   CacheStats   `json:"cache"`
	Latency LatencyStats `json:"latency"`
}

func (m *metrics) jobs() JobStats {
	return JobStats{
		Done:      m.done.Load(),
		Trapped:   m.trapped.Load(),
		Invalid:   m.invalid.Load(),
		Rejected:  m.rejected.Load(),
		Unavail:   m.unavail.Load(),
		TimedOut:  m.timedOut.Load(),
		Cancelled: m.cancelled.Load(),
	}
}

func (m *metrics) latency() LatencyStats {
	return LatencyStats{
		CompileUS: m.compileLat.Snapshot(),
		QueueUS:   m.queueLat.Snapshot(),
		RunUS:     m.runLat.Snapshot(),
	}
}
