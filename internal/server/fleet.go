package server

// The fleet layer: what one disesrvd knows about its peers. A shard map
// (internal/fleet) names the members; this file serves the membership
// document, serves and accepts trace-store entries over HTTP so peers can
// consult this node's capture instead of redoing it, fetches from peers on
// a local miss when this node is not the owner, and write-through
// replicates completed captures to the key's replica set. All peer traffic
// moves store-entry bytes (internal/store encoding), so every transfer is
// length-, key-, and SHA-verified on receipt — a corrupt or truncated body
// is indistinguishable from a miss, never data.

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/store"
	"repro/internal/trace"
)

// maxPeerEntryBytes bounds one replicated or fetched trace entry. Larger
// classes are still served locally; they just do not travel.
const maxPeerEntryBytes = 256 << 20

// fleetState is the server's view of the shard map: its own identity, the
// current map and ring (swapped atomically on SIGHUP reload), the HTTP
// client used for peer fetch and replication, and the fleet counters
// surfaced in /stats. A server outside any fleet has an empty nodeID and a
// nil map; every method degrades to a no-op.
type fleetState struct {
	nodeID string
	m      atomic.Pointer[fleet.Map]
	ring   atomic.Pointer[fleet.Ring]
	hc     *http.Client
	log    *slog.Logger

	traceServes   atomic.Int64 // GET /v1/traces entries served to peers
	replicatedOut atomic.Int64 // entries successfully pushed to a replica
	replicatedIn  atomic.Int64 // entries accepted from a replicating peer
	hedged        atomic.Int64 // requests received carrying the hedge marker
	rerouted      atomic.Int64 // requests received carrying the reroute marker
}

// routeHeader is set by FleetClient on failover and hedge duplicates so the
// receiving node can count them; the values are "reroute" and "hedge".
const routeHeader = "X-Dise-Route"

// setFleet validates and installs a shard map. A nil map detaches the node
// from any fleet (membership answers 404, peer fetch and replication stop).
func (f *fleetState) setFleet(m *fleet.Map) error {
	if m == nil {
		f.m.Store(nil)
		f.ring.Store(nil)
		return nil
	}
	r, err := fleet.NewRing(m)
	if err != nil {
		return err
	}
	if _, ok := m.Node(f.nodeID); !ok && f.nodeID != "" {
		f.log.Warn("this node is not in the shard map; serving as a pure router",
			"node", f.nodeID, "epoch", m.Epoch)
	}
	// Ring before map: a reader that sees the new map also sees a ring.
	f.ring.Store(r)
	f.m.Store(m)
	f.log.Info("shard map installed", "epoch", m.Epoch, "nodes", len(m.Nodes), "replication", m.Replication)
	return nil
}

// active reports whether this node participates in a fleet, returning the
// current map and ring when it does.
func (f *fleetState) active() (*fleet.Map, *fleet.Ring, bool) {
	m, r := f.m.Load(), f.ring.Load()
	if f.nodeID == "" || m == nil || r == nil {
		return nil, nil, false
	}
	return m, r, true
}

// SetFleet atomically swaps the server's shard map, e.g. on SIGHUP reload.
func (s *Server) SetFleet(m *fleet.Map) error { return s.fleet.setFleet(m) }

// MembershipPayload is the GET /v1/membership response body: which node is
// answering and the shard map it is serving under.
type MembershipPayload struct {
	Node        string       `json:"node"`
	Epoch       int64        `json:"epoch"`
	Replication int          `json:"replication"`
	Nodes       []fleet.Node `json:"nodes"`
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	m := s.fleet.m.Load()
	if m == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no fleet configured"})
		return
	}
	writeJSON(w, http.StatusOK, &MembershipPayload{
		Node:        s.fleet.nodeID,
		Epoch:       m.Epoch,
		Replication: m.Replication,
		Nodes:       m.Nodes,
	})
}

// parseTraceKey decodes the {key} path element: 64 hex chars of SHA-256.
func parseTraceKey(r *http.Request) (cacheKey, error) {
	var key cacheKey
	raw := r.PathValue("key")
	if len(raw) != 64 {
		return key, fmt.Errorf("trace key must be 64 hex characters, got %d", len(raw))
	}
	if _, err := hex.Decode(key[:], []byte(raw)); err != nil {
		return key, fmt.Errorf("trace key: %w", err)
	}
	return key, nil
}

// handleTraceGet serves one trace-cache entry as store-entry bytes: the
// memory tier first (re-encoded), then the disk tier verbatim-verified. A
// miss or a quarantined-corrupt entry is 404; a disk IO error or a degraded
// tier is 503 (the entry may exist, this node just cannot prove it) — a
// corrupt blob is never served, because both paths re-derive the payload
// SHA the receiver checks.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	key, err := parseTraceKey(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if tr, es, ok := s.cache.peek(key); ok {
		payload, err := encodePersist(tr, es)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		s.serveEntry(w, store.EncodeEntry(store.Key(key), payload))
		return
	}
	payload, ok, err := s.cache.diskRaw(key)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "disk tier unavailable"})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such trace"})
		return
	}
	s.serveEntry(w, store.EncodeEntry(store.Key(key), payload))
}

func (s *Server) serveEntry(w http.ResponseWriter, entry []byte) {
	s.fleet.traceServes.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(entry)))
	_, _ = w.Write(entry)
}

// handleTracePut accepts a replicated entry from a peer: decode and verify
// the store-entry envelope against the key in the path, prove the payload
// decodes under the current codec, then install it in this node's cache
// (memory and write-through to disk). Any defect answers 400 and installs
// nothing.
func (s *Server) handleTracePut(w http.ResponseWriter, r *http.Request) {
	key, err := parseTraceKey(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerEntryBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("reading entry: %v", err)})
		return
	}
	payload, err := store.DecodeEntryFor(store.Key(key), body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("entry rejected: %v", err)})
		return
	}
	tr, es, err := decodePersist(payload)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("payload rejected: %v", err)})
		return
	}
	s.fleet.replicatedIn.Add(1)
	s.cache.install(key, tr, es)
	w.WriteHeader(http.StatusNoContent)
}

// peerFetch consults the key's owner (then the remaining replicas) for an
// already-captured trace before this node captures it itself. It returns
// ok=false on any failure — the caller falls back to local capture, which
// is always correct, just slower. Implements the cache's peerFetcher hook.
func (s *Server) peerFetch(key cacheKey) (tr *trace.Trace, es core.EngineStats, ok, consulted bool) {
	m, ring, active := s.fleet.active()
	if !active {
		return nil, core.EngineStats{}, false, false
	}
	seq := ring.Route([32]byte(key), m.Replication)
	if len(seq) == 0 || seq[0].ID == s.fleet.nodeID {
		// This node owns the class: capturing here IS the single flight.
		return nil, core.EngineStats{}, false, false
	}
	for _, n := range seq {
		if n.ID == s.fleet.nodeID {
			continue
		}
		consulted = true
		if tr, es, got := s.fetchFrom(n, key); got {
			return tr, es, true, true
		}
	}
	return nil, core.EngineStats{}, false, consulted
}

// fetchFrom GETs one entry from one peer and verifies it end to end.
func (s *Server) fetchFrom(n fleet.Node, key cacheKey) (*trace.Trace, core.EngineStats, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	url := fmt.Sprintf("http://%s/v1/traces/%s", n.Addr, hex.EncodeToString(key[:]))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, core.EngineStats{}, false
	}
	resp, err := s.fleet.hc.Do(req)
	if err != nil {
		s.cfg.Log.Info("peer fetch failed", "peer", n.ID, "err", err)
		return nil, core.EngineStats{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, core.EngineStats{}, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes+1))
	if err != nil || len(body) > maxPeerEntryBytes {
		return nil, core.EngineStats{}, false
	}
	payload, err := store.DecodeEntryFor(store.Key(key), body)
	if err != nil {
		s.cfg.Log.Warn("peer sent unverifiable entry", "peer", n.ID, "err", err)
		return nil, core.EngineStats{}, false
	}
	tr, es, err := decodePersist(payload)
	if err != nil {
		s.cfg.Log.Warn("peer entry undecodable", "peer", n.ID, "err", err)
		return nil, core.EngineStats{}, false
	}
	return tr, es, true
}

// replicate write-through pushes a completed capture to the other members
// of the key's replica set. It runs synchronously on the capturing worker —
// by the time the first submission of a class is answered, R nodes hold the
// entry — but each push is individually best-effort: a dead replica costs
// one peer timeout and a log line, never the job.
func (s *Server) replicate(key cacheKey, tr *trace.Trace, es core.EngineStats) {
	m, ring, ok := s.fleet.active()
	if !ok || m.Replication < 2 {
		return
	}
	payload, err := encodePersist(tr, es)
	if err != nil {
		return
	}
	entry := store.EncodeEntry(store.Key(key), payload)
	if len(entry) > maxPeerEntryBytes {
		s.cfg.Log.Warn("capture too large to replicate", "bytes", len(entry))
		return
	}
	for _, n := range ring.Route([32]byte(key), m.Replication) {
		if n.ID == s.fleet.nodeID {
			continue
		}
		if err := s.putTo(n, key, entry); err != nil {
			s.cfg.Log.Info("replication push failed", "peer", n.ID, "err", err)
			continue
		}
		s.fleet.replicatedOut.Add(1)
	}
}

func (s *Server) putTo(n fleet.Node, key cacheKey, entry []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	url := fmt.Sprintf("http://%s/v1/traces/%s", n.Addr, hex.EncodeToString(key[:]))
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(entry))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.fleet.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return nil
}

// countRoute bumps the hedge/reroute counters for a marked request.
func (f *fleetState) countRoute(r *http.Request) {
	switch r.Header.Get(routeHeader) {
	case "hedge":
		f.hedged.Add(1)
	case "reroute":
		f.rerouted.Add(1)
	}
}

// FleetStats is the fleet section of /stats: this node's identity, the map
// epoch it serves under, and the cross-node traffic counters. hedged and
// rerouted count requests received carrying the FleetClient's route
// markers, so summed across the fleet they reconcile with the client-side
// ledger.
type FleetStats struct {
	Node          string `json:"node,omitempty"`
	Epoch         int64  `json:"epoch"`
	TraceServes   int64  `json:"trace_serves"`
	ReplicatedOut int64  `json:"replicated_out"`
	ReplicatedIn  int64  `json:"replicated_in"`
	Hedged        int64  `json:"hedged"`
	Rerouted      int64  `json:"rerouted"`
}

func (f *fleetState) stats() FleetStats {
	fs := FleetStats{
		Node:          f.nodeID,
		TraceServes:   f.traceServes.Load(),
		ReplicatedOut: f.replicatedOut.Load(),
		ReplicatedIn:  f.replicatedIn.Load(),
		Hedged:        f.hedged.Load(),
		Rerouted:      f.rerouted.Load(),
	}
	if m := f.m.Load(); m != nil {
		fs.Epoch = m.Epoch
	}
	return fs
}

// ClassKey computes the routing key of a request exactly as the server
// does: the SHA-256 equivalence-class address over the stream-changing
// dimensions. cacheable reports whether servers will cache the class
// (watchdogged jobs are not cached, but the key still routes them
// deterministically). defaultBudget must match the servers' -budget for
// requests that leave budget_insts unset.
func ClassKey(req *SubmitRequest, defaultBudget int64) (key [32]byte, cacheable bool, err error) {
	c, err := compile(req, defaultBudget)
	if err != nil {
		return key, false, err
	}
	k := c.key
	if !c.cacheable {
		k = c.cacheKey()
	}
	return [32]byte(k), c.cacheable, nil
}

// DefaultBudget exposes the server's compiled-in instruction budget default
// so clients computing ClassKey agree with servers running defaults.
const DefaultBudget = 50_000_000
