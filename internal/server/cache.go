package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
)

// cacheKey content-addresses one functional-equivalence class: the SHA-256
// of every stream-changing job dimension (see compiledJob.cacheKey).
type cacheKey [32]byte

// traceCache stores captured dynamic-instruction traces (plus the engine
// counters of the capture run) under their content address, so repeat
// submissions of the same stream — including ones that change only timing
// knobs — skip the functional emulation entirely and are served by the
// allocation-free replayer.
//
// Concurrent submissions of one key are single-flighted on the entry lock:
// the first holds ent.mu across its capture, later ones block and then hit.
// Completed entries are LRU-evicted once their record bytes exceed the
// budget; in-flight entries are never evicted (they are not accounted until
// complete).
type traceCache struct {
	mu     sync.Mutex
	m      map[cacheKey]*cacheEnt
	bytes  int64
	budget int64
	gen    uint64

	hits, misses, evictions atomic.Int64
}

type cacheEnt struct {
	// mu single-flights the capture; ready/tr/engine are written once under
	// it and only read by holders of it.
	mu     sync.Mutex
	ready  bool
	tr     *trace.Trace
	engine core.EngineStats

	// stored/size/gen are the LRU bookkeeping, guarded by traceCache.mu.
	stored bool
	size   int64
	gen    uint64
}

func newTraceCache(budget int64) *traceCache {
	return &traceCache{m: make(map[cacheKey]*cacheEnt), budget: budget}
}

// do returns the trace for key, capturing it via capture on first use. hit
// reports whether the trace was served from the cache. A capture error
// (cancellation, timeout) is returned without populating the entry, so the
// next submission of the class retries: a truncated stream reflects a
// wall-clock accident, never program content.
func (c *traceCache) do(key cacheKey, capture func() (*trace.Trace, core.EngineStats, error)) (tr *trace.Trace, es core.EngineStats, hit bool, err error) {
	c.mu.Lock()
	ent := c.m[key]
	if ent == nil {
		ent = &cacheEnt{}
		c.m[key] = ent
	}
	c.gen++
	ent.gen = c.gen
	c.mu.Unlock()

	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.ready {
		c.hits.Add(1)
		return ent.tr, ent.engine, true, nil
	}
	tr, es, err = capture()
	if err != nil {
		c.mu.Lock()
		if c.m[key] == ent {
			delete(c.m, key)
		}
		c.mu.Unlock()
		return nil, core.EngineStats{}, false, err
	}
	ent.tr, ent.engine, ent.ready = tr, es, true
	c.misses.Add(1)

	c.mu.Lock()
	// A concurrent failed capture may have deleted the key; re-insert so the
	// completed entry is reachable and accounted exactly once.
	if c.m[key] != ent {
		c.m[key] = ent
	}
	ent.stored = true
	ent.size = int64(tr.Len()) * 32 // cpu.Rec footprint, as in the experiment store
	c.bytes += ent.size
	for c.bytes > c.budget {
		var victim cacheKey
		var ve *cacheEnt
		vg := ^uint64(0)
		for k, e := range c.m {
			if e.stored && e != ent && e.gen < vg {
				vg, victim, ve = e.gen, k, e
			}
		}
		if ve == nil {
			break
		}
		c.bytes -= ve.size
		delete(c.m, victim)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	return tr, es, false, nil
}

// CacheStats is the /stats view of the trace cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

func (c *traceCache) stats() CacheStats {
	c.mu.Lock()
	n := 0
	for _, e := range c.m {
		if e.stored {
			n++
		}
	}
	bytes := c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
		Bytes:     bytes,
	}
}
