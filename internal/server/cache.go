package server

import (
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/trace"
)

// cacheKey content-addresses one functional-equivalence class: the SHA-256
// of every stream-changing job dimension (see compiledJob.cacheKey).
type cacheKey [32]byte

// traceCache stores captured dynamic-instruction traces (plus the engine
// counters of the capture run) under their content address, so repeat
// submissions of the same stream — including ones that change only timing
// knobs — skip the functional emulation entirely and are served by the
// allocation-free replayer.
//
// The cache is two-tiered. The memory tier holds the hot set under its own
// byte budget; an optional disk tier (internal/store) holds the full set, so
// restarts are warm and memory evictions are not capture losses. A memory
// miss consults the disk before capturing; a completed capture is written
// through. Disk IO errors never fail a job: the cache degrades to
// memory-only serving (degraded=true in stats, /healthz) until a background
// probe sees the disk healthy again.
//
// Concurrent submissions of one key are single-flighted on the entry lock:
// the first holds ent.mu across its capture (and its disk lookup/write),
// later ones block and then hit. Completed entries are LRU-evicted from
// memory once their record bytes exceed the budget; in-flight entries are
// never evicted (they are not accounted until complete).
type traceCache struct {
	mu     sync.Mutex
	m      map[cacheKey]*cacheEnt
	bytes  int64
	budget int64
	gen    uint64

	// disk is the persistent tier; nil when the server runs memory-only.
	// diskOK is true while the tier is serving; a disk IO error flips it
	// false (degraded) and the probe loop flips it back.
	disk   *store.Store
	diskOK atomic.Bool
	log    *slog.Logger

	// peer, when non-nil, is the fleet's cross-node fetch hook, consulted
	// after the disk tier and before capturing: a non-owner that misses asks
	// the class's owner for its already-captured entry.
	peer peerFetcher

	hits, misses, evictions atomic.Int64

	// Disk-tier outcomes. Every cacheable job is exactly one of hits,
	// diskHits, peerHits, or misses; diskMisses counts the captures that
	// consulted a healthy disk first, and diskBad the entries the store
	// verified but this layer could not decode (version skew — served as a
	// miss). peerFetches counts peer consultations, peerHits the ones a
	// peer answered.
	diskHits, diskMisses, diskBad atomic.Int64
	peerFetches, peerHits         atomic.Int64
	degradedEvents                atomic.Int64
}

// peerFetcher is the fleet layer's hook into the cache miss path.
// consulted reports whether any peer was actually asked (false when this
// node owns the class or no fleet is configured), so peerFetches counts
// real cross-node lookups only.
type peerFetcher interface {
	peerFetch(key cacheKey) (tr *trace.Trace, es core.EngineStats, ok, consulted bool)
}

type cacheEnt struct {
	// mu single-flights the capture; ready/tr/engine are written once under
	// it and only read by holders of it.
	mu     sync.Mutex
	ready  bool
	tr     *trace.Trace
	engine core.EngineStats

	// stored/size/gen are the LRU bookkeeping, guarded by traceCache.mu.
	stored bool
	size   int64
	gen    uint64
}

func newTraceCache(budget int64, disk *store.Store, log *slog.Logger) *traceCache {
	c := &traceCache{m: make(map[cacheKey]*cacheEnt), budget: budget, disk: disk, log: log}
	c.diskOK.Store(disk != nil)
	return c
}

// cacheProv records which tier served a trace: the memory hot set, the
// persistent disk tier, or a fresh capture (a miss of both). The batch
// summary reports it verbatim as cache-hit provenance; the single-job path
// only distinguishes hit (memory or disk) from capture.
type cacheProv uint8

const (
	provCapture cacheProv = iota // captured now: a miss of every tier
	provMemory                   // served from the memory hot set
	provDisk                     // served from the persistent disk tier
	provPeer                     // fetched from the owning peer's cache
)

func (p cacheProv) String() string {
	switch p {
	case provMemory:
		return "memory"
	case provDisk:
		return "disk"
	case provPeer:
		return "peer"
	default:
		return "capture"
	}
}

// hit reports whether the trace came from either cache tier.
func (p cacheProv) hit() bool { return p != provCapture }

// do returns the trace for key, capturing it via capture on first use. prov
// reports which tier served it. A capture error (cancellation, timeout) is
// returned without populating the entry, so the next submission of the
// class retries: a truncated stream reflects a wall-clock accident, never
// program content.
func (c *traceCache) do(key cacheKey, capture func() (*trace.Trace, core.EngineStats, error)) (tr *trace.Trace, es core.EngineStats, prov cacheProv, err error) {
	c.mu.Lock()
	ent := c.m[key]
	if ent == nil {
		ent = &cacheEnt{}
		c.m[key] = ent
	}
	c.gen++
	ent.gen = c.gen
	c.mu.Unlock()

	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.ready {
		c.hits.Add(1)
		return ent.tr, ent.engine, provMemory, nil
	}

	if tr, es, ok := c.diskGet(key); ok {
		ent.tr, ent.engine, ent.ready = tr, es, true
		c.diskHits.Add(1)
		c.account(key, ent)
		return tr, es, provDisk, nil
	}

	if c.peer != nil {
		tr, es, ok, consulted := c.peer.peerFetch(key)
		if consulted {
			c.peerFetches.Add(1)
		}
		if ok {
			ent.tr, ent.engine, ent.ready = tr, es, true
			c.peerHits.Add(1)
			c.diskPut(key, tr, es)
			c.account(key, ent)
			return tr, es, provPeer, nil
		}
	}

	tr, es, err = capture()
	if err != nil {
		c.mu.Lock()
		if c.m[key] == ent {
			delete(c.m, key)
		}
		c.mu.Unlock()
		return nil, core.EngineStats{}, provCapture, err
	}
	ent.tr, ent.engine, ent.ready = tr, es, true
	c.misses.Add(1)
	c.diskPut(key, tr, es)
	c.account(key, ent)
	return tr, es, provCapture, nil
}

// diskGet consults the persistent tier for key. ok=false covers every
// non-hit: no tier, degraded, absent, quarantined-corrupt, or undecodable —
// the caller captures. A disk IO error additionally degrades the cache.
func (c *traceCache) diskGet(key cacheKey) (*trace.Trace, core.EngineStats, bool) {
	if c.disk == nil || !c.diskOK.Load() {
		return nil, core.EngineStats{}, false
	}
	payload, ok, err := c.disk.Get(store.Key(key))
	if err != nil {
		c.degrade("get", err)
		return nil, core.EngineStats{}, false
	}
	if !ok {
		c.diskMisses.Add(1)
		return nil, core.EngineStats{}, false
	}
	tr, es, err := decodePersist(payload)
	if err != nil {
		// The store verified the bytes, so this is a codec mismatch (old
		// version), not corruption: recapture and overwrite.
		c.diskBad.Add(1)
		c.diskMisses.Add(1)
		c.log.Warn("store entry undecodable, recapturing", "err", err)
		return nil, core.EngineStats{}, false
	}
	return tr, es, true
}

// diskPut writes a completed capture through to the persistent tier. Errors
// degrade the cache; the job itself is already served from memory.
func (c *traceCache) diskPut(key cacheKey, tr *trace.Trace, es core.EngineStats) {
	if c.disk == nil || !c.diskOK.Load() {
		return
	}
	payload, err := encodePersist(tr, es)
	if err != nil {
		// Not a disk fault (e.g. a pathological output string); log and
		// serve this class from memory only.
		c.diskBad.Add(1)
		c.log.Warn("capture not persistable", "err", err)
		return
	}
	if err := c.disk.Put(store.Key(key), payload); err != nil {
		c.degrade("put", err)
	}
}

// peek returns a completed memory-tier entry without waiting on in-flight
// work: a capture mid-flight holds ent.mu, and the trace-serving endpoint
// must not park an HTTP handler behind a simulation — the peer falls back
// to the disk tier or its own capture instead.
func (c *traceCache) peek(key cacheKey) (*trace.Trace, core.EngineStats, bool) {
	c.mu.Lock()
	ent := c.m[key]
	c.mu.Unlock()
	if ent == nil {
		return nil, core.EngineStats{}, false
	}
	if !ent.mu.TryLock() {
		return nil, core.EngineStats{}, false
	}
	defer ent.mu.Unlock()
	if !ent.ready {
		return nil, core.EngineStats{}, false
	}
	return ent.tr, ent.engine, true
}

// diskRaw returns the verified store payload for key without decoding it,
// for serving to a peer verbatim. err is non-nil only for a disk IO fault
// (which also degrades the tier) or an already-degraded tier — the caller
// answers 503, distinguishing "cannot know" from a clean miss.
func (c *traceCache) diskRaw(key cacheKey) ([]byte, bool, error) {
	if c.disk == nil {
		return nil, false, nil
	}
	if !c.diskOK.Load() {
		return nil, false, errDiskDegraded
	}
	payload, ok, err := c.disk.Get(store.Key(key))
	if err != nil {
		c.degrade("get", err)
		return nil, false, err
	}
	return payload, ok, nil
}

// errDiskDegraded marks a disk tier that is configured but detached.
var errDiskDegraded = errors.New("disk tier degraded")

// install adopts an already-verified entry pushed by a replicating peer:
// memory tier plus write-through to disk, exactly like a local capture. An
// entry whose class is mid-capture locally is dropped — the local flight
// will produce the identical bytes anyway, and blocking a peer's HTTP
// handler behind a simulation helps no one.
func (c *traceCache) install(key cacheKey, tr *trace.Trace, es core.EngineStats) {
	c.mu.Lock()
	ent := c.m[key]
	if ent == nil {
		ent = &cacheEnt{}
		c.m[key] = ent
		c.gen++
		ent.gen = c.gen
	}
	c.mu.Unlock()
	if !ent.mu.TryLock() {
		return
	}
	defer ent.mu.Unlock()
	if ent.ready {
		return
	}
	ent.tr, ent.engine, ent.ready = tr, es, true
	c.diskPut(key, tr, es)
	c.account(key, ent)
}

// degrade flips the cache to memory-only serving, once per outage.
func (c *traceCache) degrade(op string, err error) {
	if c.diskOK.CompareAndSwap(true, false) {
		c.degradedEvents.Add(1)
		c.log.Warn("disk tier degraded, serving memory-only", "op", op, "err", err)
	}
}

// probeDisk checks a degraded disk tier end to end and re-attaches it when
// healthy. Called from the server's recovery loop.
func (c *traceCache) probeDisk() {
	if c.disk == nil || c.diskOK.Load() {
		return
	}
	if err := c.disk.Probe(); err != nil {
		return
	}
	if c.diskOK.CompareAndSwap(false, true) {
		c.log.Info("disk tier healthy again, re-attached")
	}
}

// degraded reports whether a configured disk tier is currently detached.
func (c *traceCache) degraded() bool {
	return c.disk != nil && !c.diskOK.Load()
}

// account indexes a completed entry in the memory tier and LRU-evicts other
// completed entries until the byte budget holds. Callers hold ent.mu.
func (c *traceCache) account(key cacheKey, ent *cacheEnt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A concurrent failed capture may have deleted the key; re-insert so the
	// completed entry is reachable and accounted exactly once.
	if c.m[key] != ent {
		c.m[key] = ent
	}
	ent.stored = true
	ent.size = int64(ent.tr.Len()) * 32 // cpu.Rec footprint, as in the experiment store
	c.bytes += ent.size
	for c.bytes > c.budget {
		var victim cacheKey
		var ve *cacheEnt
		vg := ^uint64(0)
		for k, e := range c.m {
			if e.stored && e != ent && e.gen < vg {
				vg, victim, ve = e.gen, k, e
			}
		}
		if ve == nil {
			break
		}
		c.bytes -= ve.size
		delete(c.m, victim)
		c.evictions.Add(1)
	}
}

// CacheStats is the /stats view of the trace cache. The memory-tier fields
// keep their one-tier meanings (hits = memory hits, misses = captures);
// every cacheable job is exactly one of hits, disk_hits, peer_hits, or
// misses. The disk_* fields are zero and degraded false on a memory-only
// server; the peer_* fields are zero outside a fleet.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`

	PeerFetches int64 `json:"peer_fetches"`
	PeerHits    int64 `json:"peer_hits"`

	DiskEnabled     bool  `json:"disk_enabled"`
	Degraded        bool  `json:"degraded"`
	DegradedEvents  int64 `json:"degraded_events"`
	DiskHits        int64 `json:"disk_hits"`
	DiskMisses      int64 `json:"disk_misses"`
	DiskBad         int64 `json:"disk_bad"`
	DiskEntries     int   `json:"disk_entries"`
	DiskBytes       int64 `json:"disk_bytes"`
	DiskWrites      int64 `json:"disk_writes"`
	DiskEvictions   int64 `json:"disk_evictions"`
	DiskQuarantined int64 `json:"disk_quarantined"`
	DiskIOErrors    int64 `json:"disk_io_errors"`
}

func (c *traceCache) stats() CacheStats {
	c.mu.Lock()
	n := 0
	for _, e := range c.m {
		if e.stored {
			n++
		}
	}
	bytes := c.bytes
	c.mu.Unlock()
	cs := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Entries:     n,
		Bytes:       bytes,
		PeerFetches: c.peerFetches.Load(),
		PeerHits:    c.peerHits.Load(),
	}
	if c.disk != nil {
		ds := c.disk.StatsSnapshot()
		cs.DiskEnabled = true
		cs.Degraded = !c.diskOK.Load()
		cs.DegradedEvents = c.degradedEvents.Load()
		cs.DiskHits = c.diskHits.Load()
		cs.DiskMisses = c.diskMisses.Load()
		cs.DiskBad = c.diskBad.Load()
		cs.DiskEntries = ds.Entries
		cs.DiskBytes = ds.Bytes
		cs.DiskWrites = ds.Writes
		cs.DiskEvictions = ds.Evictions
		cs.DiskQuarantined = ds.Quarantined
		cs.DiskIOErrors = ds.IOErrors
	}
	return cs
}
