package server

import (
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/trace"
)

// TestCacheEvictVsSingleFlight hammers a tiny-budget cache from many
// goroutines over a small key space, so evictions constantly race in-flight
// captures of the same keys, with periodic capture failures exercising the
// delete-on-error path against concurrent completions. Run under -race (the
// `make race` sweep), it checks the accounting invariants that a lost
// update would silently bend: every call is exactly one hit or one miss,
// every miss is exactly one capture, and the byte ledger equals the stored
// entries exactly.
func TestCacheEvictVsSingleFlight(t *testing.T) {
	prog := asm.MustAssemble("smoke", SmokeAsm)
	seed := trace.Capture(emu.New(prog))
	if seed.Err() != nil {
		t.Fatal(seed.Err())
	}
	blob, err := seed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	entrySize := int64(seed.Len()) * 32

	// Budget for ~2 of the 8 keys: completions beyond that always evict.
	c := newTraceCache(2*entrySize+1, nil, slog.New(slog.NewTextHandler(io.Discard, nil)))
	errInjected := errors.New("injected capture failure")

	const (
		goroutines = 8
		iters      = 400
		keys       = 8
	)
	var calls, captures, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				var key cacheKey
				key[0] = byte(rng.Intn(keys))
				calls.Add(1)
				tr, _, _, err := c.do(key, func() (*trace.Trace, core.EngineStats, error) {
					if captures.Add(1)%7 == 0 {
						failures.Add(1)
						return nil, core.EngineStats{}, errInjected
					}
					t2, err := trace.UnmarshalBinary(blob)
					return t2, core.EngineStats{}, err
				})
				switch {
				case err != nil:
					if !errors.Is(err, errInjected) {
						t.Errorf("unexpected do error: %v", err)
					}
				case tr.Len() != seed.Len():
					t.Errorf("served trace has %d records, want %d", tr.Len(), seed.Len())
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.stats()
	if got := st.Hits + st.Misses + failures.Load(); got != calls.Load() {
		t.Errorf("call ledger: hits %d + misses %d + failures %d = %d, want %d calls",
			st.Hits, st.Misses, failures.Load(), got, calls.Load())
	}
	if got := st.Misses + failures.Load(); got != captures.Load() {
		t.Errorf("capture ledger: misses %d + failures %d = %d, want %d captures",
			st.Misses, failures.Load(), got, captures.Load())
	}
	if st.Bytes != int64(st.Entries)*entrySize {
		t.Errorf("byte ledger: %d bytes for %d entries of %d", st.Bytes, st.Entries, entrySize)
	}
	// Eviction may overshoot transiently but must settle within one entry
	// of the budget once all flights land.
	if st.Bytes > 2*entrySize+1+entrySize {
		t.Errorf("bytes %d never settled under budget %d", st.Bytes, 2*entrySize+1)
	}

	// The cache must still serve: every key resolves to a full-length trace.
	for k := 0; k < keys; k++ {
		var key cacheKey
		key[0] = byte(k)
		tr, _, _, err := c.do(key, func() (*trace.Trace, core.EngineStats, error) {
			t2, err := trace.UnmarshalBinary(blob)
			return t2, core.EngineStats{}, err
		})
		if err != nil || tr.Len() != seed.Len() {
			t.Errorf("key %d unservable after the storm: %v", k, err)
		}
	}
}
