package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
)

// TestRetryAfterHint pins the 429 hint computation: queued work ahead over
// worker throughput, rounded up, clamped to [1, 30] seconds.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		name      string
		depth     int
		workers   int
		meanRunUS float64
		want      int
	}{
		{"cold server, no history", 10, 4, 0, 1},
		{"empty queue", 0, 4, 2_000_000, 1},
		{"sub-second backlog rounds up to floor", 1, 4, 100_000, 1},
		{"one slow job per worker", 4, 4, 2_000_000, 2},
		{"deep queue, one worker", 8, 1, 1_500_000, 12},
		{"fractional estimate rounds up", 3, 2, 1_000_000, 2},
		{"clamped at the 30s ceiling", 64, 1, 10_000_000, 30},
		{"degenerate worker count treated as one", 2, 0, 1_000_000, 2},
	}
	for _, c := range cases {
		if got := retryAfterHint(c.depth, c.workers, c.meanRunUS); got != c.want {
			t.Errorf("%s: retryAfterHint(%d, %d, %g) = %d, want %d",
				c.name, c.depth, c.workers, c.meanRunUS, got, c.want)
		}
	}
}

// TestOverflowRetryAfterHeader checks the wire form: an integer number of
// seconds >= 1 on every 429.
func TestOverflowRetryAfterHeader(t *testing.T) {
	cfg := quietConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	ts, _ := newTestServer(t, cfg)

	slow := &SubmitRequest{Asm: spinAsm, BudgetInsts: 1 << 40, TimeoutMS: 500}
	done := make(chan struct{}, 2)
	go func() { post(t, ts, slow); done <- struct{}{} }()
	waitStats(t, ts, "worker busy", func(sp *StatsPayload) bool { return sp.Running == 1 })
	go func() { post(t, ts, slow); done <- struct{}{} }()
	waitStats(t, ts, "queue full", func(sp *StatsPayload) bool { return sp.QueueDepth == 1 })

	status, hdr, _ := post(t, ts, slow)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	sec, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || sec < 1 || sec > 30 {
		t.Errorf("Retry-After = %q, want an integer in [1, 30]", hdr.Get("Retry-After"))
	}
	<-done
	<-done
}

// TestDrainBodies pins the 503 drain surface clients program against: both
// the admission-stage rejection and the health check answer structured
// bodies, and neither carries a Retry-After (a draining instance does not
// come back — clients should fail over, not wait).
func TestDrainBodies(t *testing.T) {
	ts, s := newTestServer(t, quietConfig())
	s.Drain()

	status, hdr, resp := post(t, ts, &SubmitRequest{Asm: SmokeAsm})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", status)
	}
	if resp.Outcome != "unavailable" || resp.Error != "server is draining" {
		t.Errorf("drain body: outcome=%q error=%q, want unavailable / server is draining",
			resp.Outcome, resp.Error)
	}
	if resp.Result != nil {
		t.Errorf("drain body carries a result: %s", resp.Result)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		t.Errorf("drain 503 carries Retry-After %q, want none", ra)
	}

	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", hr.StatusCode)
	}
	var hz struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.OK || !hz.Draining {
		t.Errorf("healthz body = %+v, want ok=false draining=true", hz)
	}
}
