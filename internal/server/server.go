// Package server is the serving layer of the reproduction: simulation as a
// service. It accepts EVR programs (assembly, EVRX images, or built-in
// benchmark names) with an optional DISE production set and a machine/engine
// configuration, runs assemble→load→simulate, and answers with the full
// timing statistics payload.
//
// Three pieces shape the service:
//
//   - a bounded job scheduler (sched.go): a fixed worker pool behind a
//     bounded admission queue. A full queue answers 429 with a Retry-After
//     hint instead of queueing unboundedly, and SIGTERM drains gracefully —
//     in-flight jobs finish, queued and new jobs fail fast with 503.
//
//   - a content-addressed result cache (cache.go): jobs are keyed by the
//     SHA-256 of their stream-changing dimensions — program bytes,
//     production text, instruction budget, engine geometry — which is the
//     experiment scheduler's functional-equivalence-class key made
//     content-addressed. The first job of a class captures its dynamic
//     instruction stream once (internal/trace); every later job of the
//     class, including ones that change only timing knobs (machine width,
//     cache sizes, DISE decoder mode, miss penalties), is served by the
//     allocation-free replayer. Cache misses are timed through the same
//     replay path as hits, so hit and miss responses are byte-identical by
//     construction.
//
//   - an observability surface: GET /healthz (readiness, 503 while
//     draining), GET /stats (queue depth, cache hit/miss/eviction counters,
//     jobs by outcome, per-stage latency histograms), and structured
//     request logs (log/slog).
//
// Every job runs under a context deadline plumbed into the emulator and
// scheduling loops (cpu.Config.Ctx / trace.CaptureContext), so a hostile or
// runaway program costs one worker slot for at most the job timeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/fleet"
	"repro/internal/store"
	"repro/internal/trace"
)

// maxBodyBytes bounds one request body; larger submissions answer 400.
const maxBodyBytes = 16 << 20

// Config parameterizes a Server. Zero fields take the documented defaults.
type Config struct {
	Workers        int           // concurrent simulations (default GOMAXPROCS)
	QueueDepth     int           // admission queue slots (default 64)
	CacheBytes     int64         // memory trace cache budget (default 256MB)
	DefaultTimeout time.Duration // job deadline when the request names none (default 30s)
	MaxTimeout     time.Duration // upper bound on requested timeouts (default 5m)
	DefaultBudget  int64         // instruction budget when the request names none (default 50M)
	Log            *slog.Logger  // request log (default slog.Default())

	StoreDir   string        // persistent trace store directory ("" = memory-only)
	StoreBytes int64         // disk tier byte budget (default 1GB)
	StoreProbe time.Duration // degraded-disk recovery probe interval (default 5s)
	StoreFS    store.FS      // filesystem under the store (default the OS; tests inject faults)

	NodeID      string        // this daemon's fleet identity ("" = not in a fleet)
	Fleet       *fleet.Map    // initial shard map (nil = none until SetFleet)
	PeerTimeout time.Duration // per-peer fetch/replication deadline (default 2s)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = DefaultBudget
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	if c.StoreBytes <= 0 {
		c.StoreBytes = 1 << 30
	}
	if c.StoreProbe <= 0 {
		c.StoreProbe = 5 * time.Second
	}
	if c.StoreFS == nil {
		c.StoreFS = store.OSFS{}
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	return c
}

// Server is one disesrvd instance: scheduler, cache, metrics, HTTP surface.
type Server struct {
	cfg     Config
	sched   *scheduler
	cache   *traceCache
	metrics metrics
	fleet   *fleetState
	seq     atomic.Int64
	bseq    atomic.Int64

	probeStop chan struct{}
	stopOnce  sync.Once
}

// New builds a Server and starts its worker pool. With Config.StoreDir set
// it opens (scrubbing) the persistent trace store under the cache and starts
// the degraded-disk recovery probe; an unopenable store is a startup error —
// refusing to start beats silently serving without the configured tier.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg.withDefaults()}
	var disk *store.Store
	if s.cfg.StoreDir != "" {
		st, rep, err := store.Open(s.cfg.StoreFS, s.cfg.StoreDir, s.cfg.StoreBytes)
		if err != nil {
			return nil, fmt.Errorf("opening trace store: %w", err)
		}
		s.cfg.Log.Info("trace store scrubbed",
			"dir", st.Dir(),
			"entries", rep.Entries,
			"bytes", rep.Bytes,
			"quarantined", rep.Quarantined,
			"tmp_removed", rep.TmpRemoved,
		)
		disk = st
	}
	s.cache = newTraceCache(s.cfg.CacheBytes, disk, s.cfg.Log)
	s.fleet = &fleetState{
		nodeID: s.cfg.NodeID,
		hc:     &http.Client{Transport: http.DefaultTransport},
		log:    s.cfg.Log,
	}
	if s.cfg.Fleet != nil {
		if err := s.fleet.setFleet(s.cfg.Fleet); err != nil {
			return nil, fmt.Errorf("installing shard map: %w", err)
		}
	}
	if s.cfg.NodeID != "" {
		s.cache.peer = s
	}
	s.sched = newScheduler(s.cfg.Workers, s.cfg.QueueDepth, s.runJob)
	if disk != nil {
		s.probeStop = make(chan struct{})
		go s.probeLoop()
	}
	return s, nil
}

// probeLoop periodically re-checks a degraded disk tier and re-attaches it
// when the probe passes. It exits on Drain.
func (s *Server) probeLoop() {
	t := time.NewTicker(s.cfg.StoreProbe)
	defer t.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-t.C:
			s.cache.probeDisk()
		}
	}
}

// Drain stops admission, lets in-flight jobs finish, fails queued jobs with
// 503, and returns when the workers have exited. The HTTP listener should
// be shut down after Drain returns so the failure responses are delivered.
func (s *Server) Drain() {
	s.stopOnce.Do(func() {
		if s.probeStop != nil {
			close(s.probeStop)
		}
	})
	s.sched.drain()
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/batches", s.handleBatch)
	mux.HandleFunc("GET /v1/membership", s.handleMembership)
	mux.HandleFunc("GET /v1/traces/{key}", s.handleTraceGet)
	mux.HandleFunc("PUT /v1/traces/{key}", s.handleTracePut)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// SubmitResponse is the POST /v1/jobs envelope. Result is deterministic per
// request; the envelope fields (job id, cache disposition, latencies) are
// volatile and excluded from the byte-identity contract.
type SubmitResponse struct {
	ID      string         `json:"id"`
	Outcome string         `json:"outcome"`
	Cached  bool           `json:"cached"`
	QueueUS int64          `json:"queue_us"`
	RunUS   int64          `json:"run_us"`
	Result  *ResultPayload `json:"result,omitempty"`
	Error   string         `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	id := fmt.Sprintf("job-%06d", s.seq.Add(1))
	s.fleet.countRoute(r)

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		s.reject(w, r, id, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), &s.metrics.invalid, t0)
		return
	}
	c, err := compile(&req, s.cfg.DefaultBudget)
	if err != nil {
		s.reject(w, r, id, http.StatusBadRequest, err, &s.metrics.invalid, t0)
		return
	}
	s.metrics.compileLat.Observe(time.Since(t0).Microseconds())

	timeout := s.cfg.DefaultTimeout
	if c.timeoutMS > 0 {
		timeout = min(time.Duration(c.timeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	j := &job{c: c, ctx: ctx, enq: time.Now(), done: make(chan struct{})}
	if err := s.sched.submit(j); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			s.reject(w, r, id, http.StatusTooManyRequests, err, &s.metrics.rejected, t0)
		default:
			s.reject(w, r, id, http.StatusServiceUnavailable, err, &s.metrics.unavail, t0)
		}
		return
	}
	<-j.done

	resp := &SubmitResponse{ID: id, Cached: j.cached, QueueUS: j.queueUS, RunUS: j.runUS}
	status := http.StatusOK
	switch {
	case j.err == nil:
		resp.Result = j.res
		resp.Outcome = "done"
		s.metrics.done.Add(1)
		if j.res.Trap != "" {
			resp.Outcome = "trapped"
			s.metrics.done.Add(-1)
			s.metrics.trapped.Add(1)
		}
	case errors.Is(j.err, errDraining):
		status = http.StatusServiceUnavailable
		resp.Outcome = "unavailable"
		resp.Error = j.err.Error()
		s.metrics.unavail.Add(1)
	case errors.Is(j.err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		resp.Outcome = "timeout"
		resp.Error = j.err.Error()
		s.metrics.timedOut.Add(1)
	default:
		// The client went away mid-job; the response is likely unread.
		status = http.StatusRequestTimeout
		resp.Outcome = "cancelled"
		resp.Error = j.err.Error()
		s.metrics.cancelled.Add(1)
	}
	writeJSON(w, status, resp)
	s.logRequest(r, id, status, resp.Outcome, j.cached, t0)
}

// runJob executes one admitted job on a worker. Cacheable jobs go through
// the trace cache — capture on first sight, replay always — so the timing
// path (and therefore the result bytes) is the same on hit and miss.
// Watchdogged jobs (MaxCycles > 0) run live and uncached. Batch jobs take
// their own path: one capture, one record walk per penalty group, k cells.
func (s *Server) runJob(j *job) {
	if j.batch != nil {
		s.runBatch(j)
		return
	}
	start := time.Now()
	j.queueUS = start.Sub(j.enq).Microseconds()
	s.metrics.queueLat.Observe(j.queueUS)
	// finish stamps the run latency before completing the job: the waiting
	// handler reads these fields as soon as done closes.
	finish := func(res *ResultPayload, cached bool, err error) {
		j.runUS = time.Since(start).Microseconds()
		s.metrics.runLat.Observe(j.runUS)
		j.finish(res, cached, err)
	}

	if err := j.ctx.Err(); err != nil {
		// Deadline or disconnect while queued: never start the simulation.
		finish(nil, false, err)
		return
	}
	c := j.c
	cfg := c.ccfg
	cfg.Ctx = j.ctx

	if !c.cacheable {
		m, ctrl := c.machine()
		res := cpu.Run(m, cfg)
		if errors.Is(res.Err, emu.ErrCancelled) {
			finish(nil, false, res.Err)
			return
		}
		var es core.EngineStats
		if ctrl != nil {
			es = ctrl.Engine().Stats
		}
		// No trace exists on the live path, so trace_n is not served here.
		finish(c.payload(res, es, nil), false, nil)
		return
	}

	tr, es, prov, err := s.cache.do(c.key, s.captureFunc(j.ctx, c))
	if err != nil {
		finish(nil, false, err)
		return
	}
	res := cpu.RunSource(tr.Replay(c.ecfg.MissPenalty, c.ecfg.ComposePenalty), cfg)
	if errors.Is(res.Err, emu.ErrCancelled) {
		finish(nil, prov.hit(), res.Err)
		return
	}
	finish(c.payload(res, es, tr.Excerpt(c.traceN)), prov.hit(), nil)
}

// captureFunc builds the cache-miss capture closure for a compiled job: a
// cancellable functional run recorded by internal/trace. A cancelled capture
// is reported as an error, never stored.
func (s *Server) captureFunc(ctx context.Context, c *compiledJob) func() (*trace.Trace, core.EngineStats, error) {
	return func() (*trace.Trace, core.EngineStats, error) {
		m, ctrl := c.machine()
		tr := trace.CaptureContext(ctx, m)
		if errors.Is(tr.Err(), emu.ErrCancelled) {
			return nil, core.EngineStats{}, tr.Err()
		}
		var es core.EngineStats
		if ctrl != nil {
			es = ctrl.Engine().Stats
		}
		// Write-through replication: by the time the first submission of a
		// class is answered, R fleet nodes hold the entry. Outside a fleet
		// this is a no-op.
		s.replicate(c.key, tr, es)
		return tr, es, nil
	}
}

// retryAfter renders the 429 Retry-After hint from the live queue state.
func (s *Server) retryAfter() int {
	return retryAfterHint(int(s.sched.depth.Load()), s.cfg.Workers,
		s.metrics.runLat.Snapshot().Mean())
}

// retryAfterHint estimates, in whole seconds, when an admission slot should
// free: the queued work ahead, spread across the workers at the observed
// mean run latency (µs), rounded up and clamped to [1, 30]. A cold server
// (no latency history) or an empty queue answers the 1-second floor; the
// 30-second ceiling keeps a long queue from parking clients forever when
// capacity is about to recover.
func retryAfterHint(depth, workers int, meanRunUS float64) int {
	if workers < 1 {
		workers = 1
	}
	sec := int(math.Ceil(float64(depth) * meanRunUS / float64(workers) / 1e6))
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// The store status is informational: a degraded disk tier still serves
	// every request (memory-only), so the endpoint stays 200 — load
	// balancers keep routing, operators see "degraded" and alert on it.
	st := "off"
	if s.cache.disk != nil {
		if s.cache.degraded() {
			st = "degraded"
		} else {
			st = "ok"
		}
	}
	body := map[string]any{
		"ok":       true,
		"draining": false,
		"store":    st,
		"degraded": s.cache.degraded(),
	}
	if s.sched.isDraining() {
		body["ok"], body["draining"] = false, true
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatsPayload{
		QueueDepth: int(s.sched.depth.Load()),
		QueueCap:   s.cfg.QueueDepth,
		Running:    int(s.sched.running.Load()),
		Workers:    s.cfg.Workers,
		Draining:   s.sched.isDraining(),
		Jobs:       s.metrics.jobs(),
		Batches:    s.metrics.batchStats(),
		Cache:      s.cache.stats(),
		Fleet:      s.fleet.stats(),
		Latency:    s.metrics.latency(),
	})
}

// reject answers an admission-stage failure and bumps its outcome counter.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, id string, status int, err error, counter *atomic.Int64, t0 time.Time) {
	counter.Add(1)
	outcome := "invalid"
	switch status {
	case http.StatusTooManyRequests:
		outcome = "rejected"
	case http.StatusServiceUnavailable:
		outcome = "unavailable"
	}
	writeJSON(w, status, &SubmitResponse{ID: id, Outcome: outcome, Error: err.Error()})
	s.logRequest(r, id, status, outcome, false, t0)
}

func (s *Server) logRequest(r *http.Request, id string, status int, outcome string, cached bool, t0 time.Time) {
	s.cfg.Log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"job", id,
		"status", status,
		"outcome", outcome,
		"cached", cached,
		"dur_ms", time.Since(t0).Milliseconds(),
	)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
