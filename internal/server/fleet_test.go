package server

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/store"
)

// startFleet starts one httptest server per config (each cfg must carry a
// NodeID), assembles a shard map over their bound addresses, and installs it
// on every node — the same bootstrap order the smoke harness uses, since
// addresses are not known until the listeners exist.
func startFleet(t *testing.T, repl int, cfgs ...Config) (map[string]*httptest.Server, map[string]*Server, *fleet.Map) {
	t.Helper()
	m := &fleet.Map{Epoch: 1, Replication: repl}
	tss := make(map[string]*httptest.Server, len(cfgs))
	srvs := make(map[string]*Server, len(cfgs))
	for _, cfg := range cfgs {
		if cfg.NodeID == "" {
			t.Fatal("startFleet: config without NodeID")
		}
		ts, s := newTestServer(t, cfg)
		tss[cfg.NodeID], srvs[cfg.NodeID] = ts, s
		m.Nodes = append(m.Nodes, fleet.Node{ID: cfg.NodeID, Addr: strings.TrimPrefix(ts.URL, "http://")})
	}
	for id, s := range srvs {
		if err := s.SetFleet(m); err != nil {
			t.Fatalf("installing map on %s: %v", id, err)
		}
	}
	return tss, srvs, m
}

func classKeyOf(t *testing.T, req *SubmitRequest) cacheKey {
	t.Helper()
	key, cacheable, err := ClassKey(req, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !cacheable {
		t.Fatalf("test request unexpectedly uncacheable")
	}
	return cacheKey(key)
}

// classOwnedBy walks budget variants of the smoke request until the ring
// places the class on the wanted node. Budget is a stream-changing dimension,
// so each variant is its own equivalence class with identical behavior.
func classOwnedBy(t *testing.T, r *fleet.Ring, nodeID string) (*SubmitRequest, cacheKey) {
	t.Helper()
	for b := int64(0); b < 256; b++ {
		req := SmokeRequest()
		req.BudgetInsts = 1_000_000 + b
		key := classKeyOf(t, req)
		if r.Owner([32]byte(key)).ID == nodeID {
			return req, key
		}
	}
	t.Fatalf("no smoke-class variant owned by %s in 256 tries", nodeID)
	return nil, cacheKey{}
}

func getTrace(t *testing.T, ts *httptest.Server, key string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/traces/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func putTrace(t *testing.T, ts *httptest.Server, key string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/traces/"+key, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestMembershipEndpoint(t *testing.T) {
	ts, s := newTestServer(t, quietConfig())

	resp, err := ts.Client().Get(ts.URL + "/v1/membership")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("membership without a fleet: %d, want 404", resp.StatusCode)
	}

	m := &fleet.Map{Epoch: 7, Replication: 1, Nodes: []fleet.Node{{ID: "a", Addr: "127.0.0.1:1"}}}
	if err := s.SetFleet(m); err != nil {
		t.Fatal(err)
	}
	get := func() *MembershipPayload {
		resp, err := ts.Client().Get(ts.URL + "/v1/membership")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("membership: %d", resp.StatusCode)
		}
		var mp MembershipPayload
		if err := json.NewDecoder(resp.Body).Decode(&mp); err != nil {
			t.Fatal(err)
		}
		return &mp
	}
	mp := get()
	if mp.Epoch != 7 || mp.Replication != 1 || len(mp.Nodes) != 1 || mp.Nodes[0].ID != "a" {
		t.Fatalf("membership payload: %+v", mp)
	}

	// A SIGHUP-style swap serves the new epoch immediately.
	m2 := &fleet.Map{Epoch: 8, Replication: 1, Nodes: m.Nodes}
	if err := s.SetFleet(m2); err != nil {
		t.Fatal(err)
	}
	if mp := get(); mp.Epoch != 8 {
		t.Fatalf("after reload epoch = %d, want 8", mp.Epoch)
	}
	if st := getStats(t, ts); st.Fleet.Epoch != 8 {
		t.Fatalf("/stats fleet epoch = %d, want 8", st.Fleet.Epoch)
	}

	// Detaching answers 404 again.
	if err := s.SetFleet(nil); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/membership")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("membership after detach: %d, want 404", resp.StatusCode)
	}
}

// TestPeerFetchServesOwnerCapture is the cross-node single-flight contract:
// with replication 1 the owner alone captures, and a non-owner's first
// submission of the class is served by fetching the owner's entry — verified
// byte-identical — instead of re-simulating.
func TestPeerFetchServesOwnerCapture(t *testing.T) {
	cfgA, cfgB := quietConfig(), quietConfig()
	cfgA.NodeID, cfgB.NodeID = "a", "b"
	tss, _, m := startFleet(t, 1, cfgA, cfgB)
	ring, err := fleet.NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	req, key := classOwnedBy(t, ring, "a")

	_, _, first := post(t, tss["a"], req)
	if first.Outcome != "done" || first.Cached {
		t.Fatalf("owner capture: outcome %q cached %v", first.Outcome, first.Cached)
	}

	_, _, second := post(t, tss["b"], req)
	if second.Outcome != "done" || !second.Cached {
		t.Fatalf("peer-served job: outcome %q cached %v", second.Outcome, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("peer-fetched result differs from owner capture:\n%s\nvs\n%s", first.Result, second.Result)
	}

	stB := getStats(t, tss["b"])
	if stB.Cache.PeerFetches != 1 || stB.Cache.PeerHits != 1 || stB.Cache.Misses != 0 {
		t.Fatalf("fetcher cache stats: %+v", stB.Cache)
	}
	stA := getStats(t, tss["a"])
	if stA.Fleet.TraceServes != 1 {
		t.Fatalf("owner trace_serves = %d, want 1", stA.Fleet.TraceServes)
	}
	if stA.Cache.PeerFetches != 0 {
		t.Fatalf("owner consulted a peer for its own class: %+v", stA.Cache)
	}

	// The fetched entry is now in b's memory tier: repeats are plain hits.
	_, _, third := post(t, tss["b"], req)
	if !third.Cached || !bytes.Equal(first.Result, third.Result) {
		t.Fatalf("repeat on fetcher: cached %v", third.Cached)
	}
	if st := getStats(t, tss["b"]); st.Cache.Hits != 1 || st.Cache.PeerFetches != 1 {
		t.Fatalf("repeat stats: %+v", st.Cache)
	}
	_ = key
}

// TestReplicationWriteThrough: with replication 2 the owner's capture is
// pushed to the replica before the first response, so the replica serves the
// class from its own memory — no peer fetch on its miss path.
func TestReplicationWriteThrough(t *testing.T) {
	cfgA, cfgB := quietConfig(), quietConfig()
	cfgA.NodeID, cfgB.NodeID = "a", "b"
	tss, _, m := startFleet(t, 2, cfgA, cfgB)
	ring, err := fleet.NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	req, key := classOwnedBy(t, ring, "a")
	replica := ring.Route([32]byte(key), 2)[1].ID
	if replica != "b" {
		t.Fatalf("with two nodes the replica must be b, got %s", replica)
	}

	_, _, first := post(t, tss["a"], req)
	if first.Outcome != "done" || first.Cached {
		t.Fatalf("owner capture: outcome %q cached %v", first.Outcome, first.Cached)
	}
	// Replication is synchronous with the capture, so the counters are
	// settled by response time.
	if st := getStats(t, tss["a"]); st.Fleet.ReplicatedOut != 1 {
		t.Fatalf("owner replicated_out = %d, want 1", st.Fleet.ReplicatedOut)
	}
	if st := getStats(t, tss["b"]); st.Fleet.ReplicatedIn != 1 {
		t.Fatalf("replica replicated_in = %d, want 1", st.Fleet.ReplicatedIn)
	}

	_, _, second := post(t, tss["b"], req)
	if second.Outcome != "done" || !second.Cached {
		t.Fatalf("replica-served job: outcome %q cached %v", second.Outcome, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("replicated result differs from owner capture")
	}
	st := getStats(t, tss["b"])
	if st.Cache.Hits != 1 || st.Cache.PeerFetches != 0 || st.Cache.Misses != 0 {
		t.Fatalf("replica cache stats after replicated hit: %+v", st.Cache)
	}
}

// TestPeerFallback: when no peer can produce the entry — clean miss on a
// healthy owner, then a 503 from an owner whose disk tier is faulted — the
// requester falls back to capturing locally, and its ledger still reconciles
// (every cacheable job is exactly one of hits/disk/peer/misses).
func TestPeerFallback(t *testing.T) {
	fsys := fault.NewFS(store.OSFS{}, fault.DisarmedPlan())
	cfgA := storeConfig(t.TempDir())
	cfgA.StoreFS = fsys
	cfgA.NodeID = "a"
	cfgB := quietConfig()
	cfgB.NodeID = "b"
	tss, _, m := startFleet(t, 1, cfgA, cfgB)
	ring, err := fleet.NewRing(m)
	if err != nil {
		t.Fatal(err)
	}

	// Clean miss: the owner has never captured the class and answers 404.
	req1, _ := classOwnedBy(t, ring, "a")
	_, _, r1 := post(t, tss["b"], req1)
	if r1.Outcome != "done" || r1.Cached {
		t.Fatalf("fallback capture: outcome %q cached %v", r1.Outcome, r1.Cached)
	}
	st := getStats(t, tss["b"])
	if st.Cache.PeerFetches != 1 || st.Cache.PeerHits != 0 || st.Cache.Misses != 1 {
		t.Fatalf("fallback stats after 404: %+v", st.Cache)
	}

	// Faulted owner: reads fail with EIO, so its trace endpoint answers 503
	// ("cannot know") — the requester must still capture and succeed.
	fsys.FailReads(fault.ErrInjectedEIO)
	req2 := SmokeRequest()
	for b := int64(0); ; b++ {
		req2.BudgetInsts = 2_000_000 + b
		if ring.Owner([32]byte(classKeyOf(t, req2))).ID == "a" {
			break
		}
	}
	_, _, r2 := post(t, tss["b"], req2)
	if r2.Outcome != "done" || r2.Cached {
		t.Fatalf("fallback past faulted owner: outcome %q cached %v", r2.Outcome, r2.Cached)
	}
	st = getStats(t, tss["b"])
	if st.Cache.PeerFetches != 2 || st.Cache.PeerHits != 0 || st.Cache.Misses != 2 {
		t.Fatalf("fallback stats after 503: %+v", st.Cache)
	}
	if got := st.Cache.Hits + st.Cache.DiskHits + st.Cache.PeerHits + st.Cache.Misses; got != 2 {
		t.Fatalf("ledger: hits+disk+peer+misses = %d, want 2", got)
	}
}

// TestTraceEndpointServesVerifiedEntry pins the wire format of GET
// /v1/traces/{key}: store-entry bytes that decode under the requested key
// and the persist codec, plus the 404/400 edges.
func TestTraceEndpointServesVerifiedEntry(t *testing.T) {
	cfg := quietConfig()
	cfg.NodeID = "a"
	tss, _, _ := startFleet(t, 1, cfg)
	ts := tss["a"]

	req := SmokeRequest()
	key := classKeyOf(t, req)
	_, _, first := post(t, ts, req)
	if first.Outcome != "done" {
		t.Fatalf("capture: %q", first.Outcome)
	}

	hexKey := hex.EncodeToString(key[:])
	code, body := getTrace(t, ts, hexKey)
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d", code)
	}
	payload, err := store.DecodeEntryFor(store.Key(key), body)
	if err != nil {
		t.Fatalf("entry does not verify: %v", err)
	}
	if _, _, err := decodePersist(payload); err != nil {
		t.Fatalf("payload does not decode: %v", err)
	}
	if st := getStats(t, ts); st.Fleet.TraceServes != 1 {
		t.Fatalf("trace_serves = %d, want 1", st.Fleet.TraceServes)
	}

	if code, _ := getTrace(t, ts, strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", code)
	}
	if code, _ := getTrace(t, ts, "zz"); code != http.StatusBadRequest {
		t.Fatalf("short key: %d, want 400", code)
	}
	if code, _ := getTrace(t, ts, strings.Repeat("x", 64)); code != http.StatusBadRequest {
		t.Fatalf("non-hex key: %d, want 400", code)
	}
}

// TestTraceEndpointUnderDiskFaults drives the endpoint through the disk
// tier's failure modes: EIO answers 503 (never bytes), a healed tier serves
// again, and a corrupted-on-disk entry is quarantined into a clean 404 — a
// corrupt blob is never handed to a peer.
func TestTraceEndpointUnderDiskFaults(t *testing.T) {
	dir := t.TempDir()
	fsys := fault.NewFS(store.OSFS{}, fault.DisarmedPlan())
	cfg := storeConfig(dir)
	cfg.StoreFS = fsys
	cfg.NodeID = "a"
	cfg.CacheBytes = 1 // evict completed classes from memory so GETs reach disk
	cfg.StoreProbe = 5 * time.Millisecond
	tss, _, _ := startFleet(t, 1, cfg)
	ts := tss["a"]

	reqA := SmokeRequest()
	keyA := hex.EncodeToString(func() []byte { k := classKeyOf(t, reqA); return k[:] }())
	reqB := SmokeRequest()
	reqB.BudgetInsts = 3_000_000
	if _, _, r := post(t, ts, reqA); r.Outcome != "done" {
		t.Fatalf("capture A: %q", r.Outcome)
	}
	if _, _, r := post(t, ts, reqB); r.Outcome != "done" {
		t.Fatalf("capture B: %q", r.Outcome)
	}

	// A is evicted from memory (budget 1 byte), so the GET must go to disk.
	fsys.FailReads(fault.ErrInjectedEIO)
	if code, _ := getTrace(t, ts, keyA); code != http.StatusServiceUnavailable {
		t.Fatalf("GET under EIO: %d, want 503", code)
	}
	// The fault degraded the tier; while degraded the answer stays 503.
	if code, _ := getTrace(t, ts, keyA); code != http.StatusServiceUnavailable {
		t.Fatalf("GET while degraded: %d, want 503", code)
	}

	fsys.Heal()
	waitStats(t, ts, "disk tier to re-attach", func(sp *StatsPayload) bool {
		return !sp.Cache.Degraded
	})
	code, body := getTrace(t, ts, keyA)
	if code != http.StatusOK {
		t.Fatalf("GET after heal: %d", code)
	}
	var key store.Key
	if _, err := hex.Decode(key[:], []byte(keyA)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.DecodeEntryFor(key, body); err != nil {
		t.Fatalf("healed entry does not verify: %v", err)
	}

	// Corrupt A's entry file on disk: the store quarantines it on read and
	// the endpoint answers a clean 404.
	name := filepath.Join(dir, keyA+".dse")
	if err := os.WriteFile(name, []byte("garbage, not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := getTrace(t, ts, keyA); code != http.StatusNotFound {
		t.Fatalf("GET of corrupt entry: %d, want 404", code)
	}
}

// TestTracePutRoundTrip moves an entry between two standalone servers by
// hand — GET from the capturer, PUT to the other — and pins the PUT
// validation edges: garbage and key-mismatched envelopes install nothing.
func TestTracePutRoundTrip(t *testing.T) {
	ts1, _ := newTestServer(t, quietConfig())
	ts2, _ := newTestServer(t, quietConfig())

	req := SmokeRequest()
	key := classKeyOf(t, req)
	hexKey := hex.EncodeToString(key[:])
	_, _, first := post(t, ts1, req)
	if first.Outcome != "done" {
		t.Fatalf("capture: %q", first.Outcome)
	}
	code, entry := getTrace(t, ts1, hexKey)
	if code != http.StatusOK {
		t.Fatalf("GET: %d", code)
	}

	if code := putTrace(t, ts2, hexKey, []byte("not an entry")); code != http.StatusBadRequest {
		t.Fatalf("PUT garbage: %d, want 400", code)
	}
	wrong := strings.Repeat("0", 64)
	if code := putTrace(t, ts2, wrong, entry); code != http.StatusBadRequest {
		t.Fatalf("PUT under mismatched key: %d, want 400", code)
	}
	if st := getStats(t, ts2); st.Fleet.ReplicatedIn != 0 {
		t.Fatalf("rejected PUTs counted: %+v", st.Fleet)
	}

	if code := putTrace(t, ts2, hexKey, entry); code != http.StatusNoContent {
		t.Fatalf("PUT valid entry: %d, want 204", code)
	}
	if st := getStats(t, ts2); st.Fleet.ReplicatedIn != 1 {
		t.Fatalf("replicated_in = %d, want 1", st.Fleet.ReplicatedIn)
	}

	// The installed entry serves the class from memory, byte-identical.
	_, _, second := post(t, ts2, req)
	if !second.Cached || !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("installed entry not served: cached %v", second.Cached)
	}
	if st := getStats(t, ts2); st.Cache.Hits != 1 || st.Cache.Misses != 0 {
		t.Fatalf("post-install stats: %+v", st.Cache)
	}
}

// TestRouteMarkerCounters: requests carrying the FleetClient's route markers
// bump the receiving node's hedged/rerouted counters, which is what lets the
// smoke harness reconcile client and fleet ledgers exactly.
func TestRouteMarkerCounters(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())
	send := func(marker string) {
		body, _ := json.Marshal(SmokeRequest())
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if marker != "" {
			req.Header.Set("X-Dise-Route", marker)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	send("")
	send("hedge")
	send("reroute")
	send("reroute")
	st := getStats(t, ts)
	if st.Fleet.Hedged != 1 || st.Fleet.Rerouted != 2 {
		t.Fatalf("route counters: hedged %d rerouted %d, want 1 and 2", st.Fleet.Hedged, st.Fleet.Rerouted)
	}
}
