package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler admission errors. The HTTP layer maps errQueueFull to 429 with
// a Retry-After hint and errDraining to 503.
var (
	errQueueFull = errors.New("job queue is full")
	errDraining  = errors.New("server is draining")
)

// job is one queued unit of work: a compiled request plus its completion
// channel. The worker fills res/cached/err and closes done exactly once.
type job struct {
	c   *compiledJob
	ctx context.Context
	enq time.Time

	// batch, when non-nil, marks this queue slot as a /v1/batches submission:
	// c is the first cell (shared class representative) and the worker streams
	// per-cell results through batch.lines instead of filling res.
	batch *batchState

	res     *ResultPayload
	cached  bool
	err     error
	queueUS int64 // admission → worker pickup
	runUS   int64 // worker pickup → completion
	done    chan struct{}
}

// finish completes the job exactly once. For batch jobs it also closes the
// cell stream, so the streaming handler unblocks on every completion path —
// including the drain-remnant one, where no cell was ever run.
func (j *job) finish(res *ResultPayload, cached bool, err error) {
	j.res, j.cached, j.err = res, cached, err
	if j.batch != nil {
		close(j.batch.lines)
	}
	close(j.done)
}

// scheduler is the serving layer's bounded worker pool, the service-shaped
// sibling of the experiment harness scheduler: a fixed worker count bounds
// concurrent simulations, a bounded channel is the admission queue, and a
// draining flag turns SIGTERM into "in-flight jobs finish, queued and new
// jobs fail fast with 503".
type scheduler struct {
	queue chan *job
	wg    sync.WaitGroup

	mu       sync.RWMutex // guards draining and, with it, close(queue)
	draining bool

	depth   atomic.Int64 // queued, not yet picked up
	running atomic.Int64 // being simulated right now
}

// newScheduler starts workers goroutines servicing a queueDepth-slot queue.
// run executes one job and must finish it.
func newScheduler(workers, queueDepth int, run func(*job)) *scheduler {
	s := &scheduler{queue: make(chan *job, queueDepth)}
	s.wg.Add(workers)
	for range workers {
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.depth.Add(-1)
				if s.isDraining() {
					// Drained queue remnant: clean 503, no simulation.
					j.finish(nil, false, errDraining)
					continue
				}
				s.running.Add(1)
				run(j)
				s.running.Add(-1)
			}
		}()
	}
	return s
}

// submit enqueues j without blocking: a full queue is backpressure (429),
// not a wait. Holding the read lock across the send excludes drain's
// close(queue).
func (s *scheduler) submit(j *job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.queue <- j:
		s.depth.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

func (s *scheduler) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// drain stops admission, fails every queued job with 503, lets in-flight
// jobs finish, and returns when the workers have exited. Safe to call more
// than once.
func (s *scheduler) drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
