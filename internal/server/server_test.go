package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/goldentest"
)

// spinAsm never halts; lifecycle tests bound it with budgets or deadlines.
const spinAsm = `
.entry main
main:
    br zero, main
`

func quietConfig() Config {
	return Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = quietConfig().Log
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// rawResponse keeps Result as raw bytes so tests can assert byte-identity.
type rawResponse struct {
	ID      string          `json:"id"`
	Outcome string          `json:"outcome"`
	Cached  bool            `json:"cached"`
	Result  json.RawMessage `json:"result"`
	Error   string          `json:"error"`
}

func post(t *testing.T, ts *httptest.Server, req *SubmitRequest) (int, http.Header, *rawResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out rawResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, resp.Header, &out
}

func getStats(t *testing.T, ts *httptest.Server) *StatsPayload {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sp StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		t.Fatal(err)
	}
	return &sp
}

// waitStats polls /stats until cond holds (scheduler gauges are racy to
// observe any other way).
func waitStats(t *testing.T, ts *httptest.Server, what string, cond func(*StatsPayload) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(getStats(t, ts)) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSmokeGolden ties the serving layer's fixtures to the repository's
// golden harness: the smoke program/productions must reproduce the same
// headline numbers the quickstart example pins, live and via trace replay.
func TestSmokeGolden(t *testing.T) {
	mk := func() *emu.Machine {
		prog := asm.MustAssemble("smoke", SmokeAsm)
		ctrl := core.NewController(core.DefaultEngineConfig())
		if _, err := ctrl.InstallFile(SmokeProds, nil); err != nil {
			t.Fatal(err)
		}
		m := emu.New(prog)
		m.SetExpander(ctrl.Engine())
		return m
	}
	goldentest.Check(t, "server-smoke", mk, 30, 150, goldentest.Want(SmokeWant))
}

// TestJobLifecycle walks one server through the request lifecycle table:
// accepted → done/trapped, invalid → 400, deadline → 504.
func TestJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())
	cases := []struct {
		name    string
		req     *SubmitRequest
		status  int
		outcome string
	}{
		{"plain asm", &SubmitRequest{Asm: SmokeAsm}, http.StatusOK, "done"},
		{"asm with prods", SmokeRequest(), http.StatusOK, "done"},
		{"bench", &SubmitRequest{Bench: "gzip", BudgetInsts: 20000}, http.StatusOK, "trapped"},
		{"budget trap", &SubmitRequest{Asm: spinAsm, BudgetInsts: 1000}, http.StatusOK, "trapped"},
		{"timeout", &SubmitRequest{Asm: spinAsm, BudgetInsts: 1 << 40, TimeoutMS: 1}, http.StatusGatewayTimeout, "timeout"},
		{"no program", &SubmitRequest{}, http.StatusBadRequest, "invalid"},
		{"two programs", &SubmitRequest{Asm: SmokeAsm, Bench: "gzip"}, http.StatusBadRequest, "invalid"},
		{"bad asm", &SubmitRequest{Asm: "not a program"}, http.StatusBadRequest, "invalid"},
		{"bad image", &SubmitRequest{ImageB64: "AAAA"}, http.StatusBadRequest, "invalid"},
		{"unknown bench", &SubmitRequest{Bench: "nope"}, http.StatusBadRequest, "invalid"},
		{"bad prods", &SubmitRequest{Asm: SmokeAsm, Prods: "prod {"}, http.StatusBadRequest, "invalid"},
		{"bad dise mode", &SubmitRequest{Asm: SmokeAsm, Machine: MachineSpec{DiseMode: "warp"}}, http.StatusBadRequest, "invalid"},
		{"bad cache size", &SubmitRequest{Asm: SmokeAsm, Machine: MachineSpec{ICacheKB: 7}}, http.StatusBadRequest, "invalid"},
		{"negative budget", &SubmitRequest{Asm: SmokeAsm, BudgetInsts: -1}, http.StatusBadRequest, "invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, resp := post(t, ts, tc.req)
			if status != tc.status || resp.Outcome != tc.outcome {
				t.Fatalf("got status=%d outcome=%q (err %q), want status=%d outcome=%q",
					status, resp.Outcome, resp.Error, tc.status, tc.outcome)
			}
			if tc.status == http.StatusBadRequest && resp.Error == "" {
				t.Error("400 without a diagnostic")
			}
		})
	}

	t.Run("unknown field", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
			bytes.NewReader([]byte(`{"porgram": "oops"}`)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown field: got %d, want 400", resp.StatusCode)
		}
	})
}

// TestCacheHitByteIdentical is the tentpole acceptance check: a repeat
// submission is served from the trace cache (observable in /stats) with a
// result byte-identical to the first, live response; a third submission
// that changes only timing knobs still hits the cache.
func TestCacheHitByteIdentical(t *testing.T) {
	ts, _ := newTestServer(t, quietConfig())

	req := SmokeRequest()
	req.Disasm = true
	req.TraceN = 8
	status, _, first := post(t, ts, req)
	if status != http.StatusOK || first.Cached {
		t.Fatalf("first submission: status=%d cached=%v, want 200 live", status, first.Cached)
	}
	var p ResultPayload
	if err := json.Unmarshal(first.Result, &p); err != nil {
		t.Fatal(err)
	}
	got := struct{ Cycles, Insts, Mispredicts, DiseStalls int64 }{p.Cycles, p.Insts, p.Mispredicts, p.DiseStalls}
	if got != SmokeWant {
		t.Fatalf("smoke result drifted: got %+v, want %+v", got, SmokeWant)
	}
	if p.Disasm == "" || len(p.Trace) != 8 {
		t.Fatalf("extras missing: disasm %d bytes, %d trace records", len(p.Disasm), len(p.Trace))
	}

	status, _, second := post(t, ts, req)
	if status != http.StatusOK || !second.Cached {
		t.Fatalf("second submission: status=%d cached=%v, want cached 200", status, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cache hit is not byte-identical:\nlive:   %s\ncached: %s", first.Result, second.Result)
	}

	// Timing-only knobs reuse the same captured stream: cache hit, but a
	// different timing result.
	wide := SmokeRequest()
	wide.Machine.Width = 8
	wide.Engine.MissPenalty = 60
	status, _, third := post(t, ts, wide)
	if status != http.StatusOK || !third.Cached {
		t.Fatalf("timing-only variant: status=%d cached=%v, want cached 200", status, third.Cached)
	}
	var wp ResultPayload
	if err := json.Unmarshal(third.Result, &wp); err != nil {
		t.Fatal(err)
	}
	if wp.DiseStalls != 2*p.DiseStalls {
		t.Errorf("doubled miss penalty: stalls %d, want %d", wp.DiseStalls, 2*p.DiseStalls)
	}

	sp := getStats(t, ts)
	if sp.Cache.Misses != 1 || sp.Cache.Hits != 2 {
		t.Errorf("cache counters: %+v, want 1 miss / 2 hits", sp.Cache)
	}
	// A stream-changing knob (engine geometry) is a different class.
	narrow := SmokeRequest()
	narrow.Engine.RTPerfect = true
	if status, _, r := post(t, ts, narrow); status != http.StatusOK || r.Cached {
		t.Fatalf("geometry change: status=%d cached=%v, want live 200", status, r.Cached)
	}
	if sp := getStats(t, ts); sp.Cache.Misses != 2 {
		t.Errorf("geometry change did not miss: %+v", sp.Cache)
	}
}

// TestQueueOverflow fills the one-slot queue behind a one-worker pool and
// requires the next submission to bounce with 429 + Retry-After.
func TestQueueOverflow(t *testing.T) {
	cfg := quietConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	ts, _ := newTestServer(t, cfg)

	slow := &SubmitRequest{Asm: spinAsm, BudgetInsts: 1 << 40, TimeoutMS: 500}
	results := make(chan int, 2)
	go func() { st, _, _ := post(t, ts, slow); results <- st }()
	waitStats(t, ts, "worker busy", func(sp *StatsPayload) bool { return sp.Running == 1 })
	go func() { st, _, _ := post(t, ts, slow); results <- st }()
	waitStats(t, ts, "queue full", func(sp *StatsPayload) bool { return sp.QueueDepth == 1 })

	status, hdr, resp := post(t, ts, slow)
	if status != http.StatusTooManyRequests || resp.Outcome != "rejected" {
		t.Fatalf("overflow: status=%d outcome=%q, want 429 rejected", status, resp.Outcome)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	<-results
	<-results
	if sp := getStats(t, ts); sp.Jobs.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", sp.Jobs.Rejected)
	}
}

// TestDrainUnderLoad checks graceful shutdown: the in-flight job runs to
// its real result, the queued job gets a clean 503, and post-drain
// submissions are refused.
func TestDrainUnderLoad(t *testing.T) {
	cfg := quietConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 4
	ts, s := newTestServer(t, cfg)

	type res struct {
		status  int
		outcome string
	}
	// In-flight: a budget-bounded spin. The budget must be large enough that
	// the job is still running when Drain engages below — if it traps first,
	// the worker dequeues the "queued" job and the 503 this test asserts can
	// never happen — yet small enough to finish within the drain grace.
	inflight := make(chan res, 1)
	go func() {
		st, _, r := post(t, ts, &SubmitRequest{Asm: spinAsm, BudgetInsts: 60_000_000})
		inflight <- res{st, r.Outcome}
	}()
	waitStats(t, ts, "worker busy", func(sp *StatsPayload) bool { return sp.Running == 1 })

	queued := make(chan res, 1)
	go func() {
		// The timeout only bounds the test if drain never rejects the job;
		// keep it far above the drain latency of a saturated CI box so a
		// slow rejection cannot masquerade as a 504.
		st, _, r := post(t, ts, &SubmitRequest{Asm: spinAsm, BudgetInsts: 1 << 40, TimeoutMS: 60_000})
		queued <- res{st, r.Outcome}
	}()
	waitStats(t, ts, "job queued", func(sp *StatsPayload) bool { return sp.QueueDepth == 1 })

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	waitStats(t, ts, "draining", func(sp *StatsPayload) bool { return sp.Draining })

	if st, _, r := post(t, ts, &SubmitRequest{Asm: SmokeAsm}); st != http.StatusServiceUnavailable || r.Outcome != "unavailable" {
		t.Fatalf("post-drain submit: status=%d outcome=%q, want 503 unavailable", st, r.Outcome)
	}
	if hr, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		hr.Body.Close()
		if hr.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz while draining: %d, want 503", hr.StatusCode)
		}
	}

	if r := <-inflight; r.status != http.StatusOK || r.outcome != "trapped" {
		t.Errorf("in-flight job: status=%d outcome=%q, want 200 trapped", r.status, r.outcome)
	}
	if r := <-queued; r.status != http.StatusServiceUnavailable || r.outcome != "unavailable" {
		t.Errorf("queued job: status=%d outcome=%q, want 503 unavailable", r.status, r.outcome)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return")
	}
}
