package server

// Batched sweep serving: POST /v1/batches accepts an array of jobs that
// share one functional-equivalence class and serves the whole sweep from a
// single captured record walk. The class stream is captured (or fetched)
// once through the two-tier trace cache; all k timing configurations are
// then stepped down the shared stream by cpu.RunSourceMany — one walk per
// distinct penalty pair, since RT penalties are baked into the replayer.
// Each cell's result is streamed as a JSON line the moment it lands, and a
// terminal summary line reconciles cells issued/done/trapped/aborted with
// the cache-hit provenance.
//
// The byte-identity contract extends to batches: a cell's result object is
// byte-for-byte the result field of the equivalent single /v1/jobs
// response, because both are produced by the same compile → capture →
// replay → payload path and encoded with the same HTML-escaping-off
// encoder.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cpu"
	"repro/internal/emu"
)

// maxBatchCells bounds one batch; larger submissions answer 400. The cap
// keeps a single queue slot from smuggling unbounded work past admission
// control: a 64-cell sweep is one slot, a 1000-cell one is many batches.
const maxBatchCells = 64

// BatchRequest is the POST /v1/batches body: a sweep of jobs that must all
// belong to one functional-equivalence class (same program image,
// productions, register presets, budget, and engine geometry — exactly the
// trace-cache key). Cells may differ in any timing knob: machine spec, DISE
// mode, cache sizes, RT penalties, plus the disasm/trace_n extras.
type BatchRequest struct {
	Jobs []SubmitRequest `json:"jobs"`

	// TimeoutMS caps the whole batch's wall-clock time (0 = server default,
	// bounded above by it). Per-cell timeout_ms must be zero: the batch is
	// one scheduling unit.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchCell is one streamed per-cell line. Index is the cell's position in
// the request's jobs array (cells land in penalty-group order, not
// necessarily index order). Result is byte-identical to the result field of
// the equivalent single-job response.
type BatchCell struct {
	Index   int            `json:"index"`
	Outcome string         `json:"outcome"` // done | trapped
	Result  *ResultPayload `json:"result"`
}

// BatchSummary is the terminal line of a batch stream. Done + Trapped +
// Aborted always equals Cells; Aborted is non-zero exactly when Error is
// set (timeout, cancellation, or drain ended the batch early).
type BatchSummary struct {
	ID      string `json:"batch_id"`
	Outcome string `json:"batch_outcome"` // done | unavailable | timeout | cancelled
	Cells   int    `json:"cells"`
	Done    int    `json:"cells_ok"`
	Trapped int    `json:"cells_trap"`
	Aborted int    `json:"cells_aborted"`
	// Cache is the provenance of the class stream: "memory", "disk",
	// "peer" (fetched from the owning fleet node), or "capture" (the
	// batch captured it now).
	Cache   string `json:"cache"`
	QueueUS int64  `json:"queue_us"`
	RunUS   int64  `json:"run_us"`
	Error   string `json:"error,omitempty"`
}

// BatchLine is one application/x-ndjson line of a batch response: every
// line carries exactly one of cell or summary, and the summary is always
// last.
type BatchLine struct {
	Cell    *BatchCell    `json:"cell,omitempty"`
	Summary *BatchSummary `json:"summary,omitempty"`
}

// batchState is the worker<->handler rendezvous for one admitted batch.
// The worker sends finished cells on lines (buffered to len(cells), so a
// slow reader never blocks the worker) and job.finish closes it; the
// handler streams lines as they arrive and reads the tallies after done.
type batchState struct {
	cells []*compiledJob
	lines chan BatchCell

	// Written by the worker before finish, read by the handler after done.
	prov    cacheProv
	done    int
	trapped int
}

// compileBatch validates a batch: 1..maxBatchCells cells, each one a valid
// cacheable job, all in the class of the first. Every error is a 400.
func compileBatch(req *BatchRequest, defaultBudget int64) ([]*compiledJob, error) {
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be non-negative")
	}
	if len(req.Jobs) == 0 {
		return nil, fmt.Errorf("a batch needs at least one job")
	}
	if len(req.Jobs) > maxBatchCells {
		return nil, fmt.Errorf("batch of %d cells exceeds the limit of %d", len(req.Jobs), maxBatchCells)
	}
	cells := make([]*compiledJob, len(req.Jobs))
	for i := range req.Jobs {
		var c *compiledJob
		var err error
		if i > 0 && sameClassFields(&req.Jobs[i], &req.Jobs[0]) {
			// The common sweep shape: the cell repeats jobs[0]'s functional
			// fields verbatim and varies only timing knobs, so its class key
			// is jobs[0]'s by construction. Reuse the compiled program and
			// key instead of re-assembling and re-hashing it per cell.
			c, err = compileTimingVariant(&req.Jobs[i], cells[0])
		} else {
			c, err = compile(&req.Jobs[i], defaultBudget)
		}
		if err != nil {
			return nil, fmt.Errorf("jobs[%d]: %w", i, err)
		}
		if c.maxCycles != 0 {
			return nil, fmt.Errorf("jobs[%d]: max_cycles is not batchable (watchdogged jobs run live; submit via /v1/jobs)", i)
		}
		if c.timeoutMS != 0 {
			return nil, fmt.Errorf("jobs[%d]: set timeout_ms on the batch, not on a cell", i)
		}
		if i > 0 && c.key != cells[0].key {
			return nil, fmt.Errorf("jobs[%d] is not in jobs[0]'s functional-equivalence class (program, prods, regs, budget_insts and engine geometry must match; only timing knobs may vary)", i)
		}
		cells[i] = c
	}
	return cells, nil
}

// sameClassFields reports whether a and b agree on every functional (class-
// key) request field: program source, productions, register presets, budget,
// and engine geometry. Timing knobs — the machine spec and the engine
// penalties — are deliberately not compared. A false answer is never wrong,
// only slow: the caller falls back to a full compile and the key comparison
// decides class membership.
func sameClassFields(a, b *SubmitRequest) bool {
	if a.Asm != b.Asm || a.ImageB64 != b.ImageB64 || a.Bench != b.Bench ||
		a.Prods != b.Prods || a.BudgetInsts != b.BudgetInsts {
		return false
	}
	if a.Engine.PTEntries != b.Engine.PTEntries ||
		a.Engine.RTEntries != b.Engine.RTEntries ||
		a.Engine.RTAssoc != b.Engine.RTAssoc ||
		a.Engine.RTBlock != b.Engine.RTBlock ||
		a.Engine.RTPerfect != b.Engine.RTPerfect {
		return false
	}
	if len(a.Regs) != len(b.Regs) {
		return false
	}
	for k, v := range a.Regs {
		if bv, ok := b.Regs[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// compileTimingVariant compiles a cell whose functional fields are verbatim
// those of an already-compiled base cell: the program, image, productions,
// register presets, budget, and cache key carry over; only the timing knobs
// (machine spec, engine penalties) and the per-cell extras are resolved. The
// validation mirrors compile for exactly the fields it resolves.
func compileTimingVariant(req *SubmitRequest, base *compiledJob) (*compiledJob, error) {
	j := &compiledJob{
		prog:      base.prog,
		image:     base.image,
		prods:     base.prods,
		regs:      base.regs,
		budget:    base.budget,
		maxCycles: req.MaxCycles,
		timeoutMS: req.TimeoutMS,
		disasm:    req.Disasm,
		traceN:    req.TraceN,
		key:       base.key,
		cacheable: true,
	}
	if j.maxCycles < 0 || j.timeoutMS < 0 || j.traceN < 0 {
		return nil, fmt.Errorf("budget_insts, max_cycles, timeout_ms and trace_n must be non-negative")
	}
	if j.traceN > maxTraceN {
		return nil, fmt.Errorf("trace_n %d exceeds the limit of %d", j.traceN, maxTraceN)
	}
	var err error
	if j.ecfg, err = engineConfig(req.Engine); err != nil {
		return nil, err
	}
	if j.ccfg, err = cpuConfig(req.Machine); err != nil {
		return nil, err
	}
	j.ccfg.MaxCycles = j.maxCycles
	return j, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	id := fmt.Sprintf("batch-%06d", s.bseq.Add(1))
	s.fleet.countRoute(r)

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		s.reject(w, r, id, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), &s.metrics.invalid, t0)
		return
	}
	cells, err := compileBatch(&req, s.cfg.DefaultBudget)
	if err != nil {
		s.reject(w, r, id, http.StatusBadRequest, err, &s.metrics.invalid, t0)
		return
	}
	s.metrics.compileLat.Observe(time.Since(t0).Microseconds())

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	b := &batchState{cells: cells, lines: make(chan BatchCell, len(cells))}
	j := &job{c: cells[0], ctx: ctx, enq: time.Now(), done: make(chan struct{}), batch: b}
	if err := s.sched.submit(j); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			s.reject(w, r, id, http.StatusTooManyRequests, err, &s.metrics.rejected, t0)
		default:
			s.reject(w, r, id, http.StatusServiceUnavailable, err, &s.metrics.unavail, t0)
		}
		return
	}
	s.metrics.batches.Add(1)
	s.metrics.batchCells.Add(int64(len(cells)))
	s.metrics.cellsPerBatch.Observe(int64(len(cells)))

	// Hold the response status until the first cell lands: a batch that dies
	// before producing anything (drained remnant, capture timeout, client
	// gone while queued) still gets a proper non-200 with the single-job
	// envelope, so clients keep their typed-error and retry semantics.
	first, streaming := <-b.lines
	if !streaming {
		<-j.done
		status, outcome := batchFailure(j.err)
		s.accountAborted(len(cells), outcome)
		writeJSON(w, status, &SubmitResponse{ID: id, Outcome: outcome, QueueUS: j.queueUS, RunUS: j.runUS, Error: j.err.Error()})
		s.logRequest(r, id, status, outcome, false, t0)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetEscapeHTML(false)
	fl, _ := w.(http.Flusher)
	emit := func(line *BatchLine) {
		_ = enc.Encode(line)
		if fl != nil {
			fl.Flush()
		}
	}
	emit(&BatchLine{Cell: &first})
	for cell := range b.lines {
		emit(&BatchLine{Cell: &cell})
	}
	<-j.done

	sum := &BatchSummary{
		ID:      id,
		Outcome: "done",
		Cells:   len(cells),
		Done:    b.done,
		Trapped: b.trapped,
		Aborted: len(cells) - b.done - b.trapped,
		Cache:   b.prov.String(),
		QueueUS: j.queueUS,
		RunUS:   j.runUS,
	}
	if j.err != nil {
		_, sum.Outcome = batchFailure(j.err)
		sum.Error = j.err.Error()
	}
	if sum.Aborted > 0 {
		s.accountAborted(sum.Aborted, sum.Outcome)
	}
	emit(&BatchLine{Summary: sum})
	s.metrics.streamBytes.Add(cw.n)
	s.logRequest(r, id, http.StatusOK, sum.Outcome, b.prov.hit(), t0)
}

// batchFailure maps a batch-terminating error to the HTTP status (used only
// before the stream starts) and the outcome word (used in both the
// pre-stream envelope and the in-stream summary).
func batchFailure(err error) (int, string) {
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "unavailable"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	default:
		return http.StatusRequestTimeout, "cancelled"
	}
}

// accountAborted books n admitted-but-never-answered cells: they are
// aborted in the batch ledger and land in the jobs counter of the batch's
// failure outcome, so the jobs and batch_* totals reconcile exactly.
func (s *Server) accountAborted(n int, outcome string) {
	s.metrics.cellsAborted.Add(int64(n))
	switch outcome {
	case "unavailable":
		s.metrics.unavail.Add(int64(n))
	case "timeout":
		s.metrics.timedOut.Add(int64(n))
	default:
		s.metrics.cancelled.Add(int64(n))
	}
}

// runBatch executes one admitted batch on a worker: one trace-cache visit
// for the shared class, then one RunSourceMany record walk per distinct
// penalty pair. Cells stream out as they finish; cancellation (client
// disconnect, deadline, drain) stops the walk and leaves the remaining
// cells to be tallied as aborted by the handler.
func (s *Server) runBatch(j *job) {
	start := time.Now()
	j.queueUS = start.Sub(j.enq).Microseconds()
	s.metrics.queueLat.Observe(j.queueUS)
	b := j.batch
	finish := func(err error) {
		j.runUS = time.Since(start).Microseconds()
		s.metrics.runLat.Observe(j.runUS)
		j.finish(nil, b.prov.hit(), err)
	}

	if err := j.ctx.Err(); err != nil {
		finish(err)
		return
	}
	c0 := b.cells[0]
	tr, es, prov, err := s.cache.do(c0.key, s.captureFunc(j.ctx, c0))
	b.prov = prov
	if err != nil {
		finish(err)
		return
	}

	// Group cells by RT penalty pair: penalties are applied by the replayer,
	// so cells that disagree on them cannot share one walk. Within a group,
	// RunSourceMany steps every configuration down a single pass over the
	// shared record stream. The common case — a machine-knob sweep — is one
	// group, one walk.
	type penGroup struct {
		miss, compose int
		idx           []int
	}
	var groups []*penGroup
	for i, c := range b.cells {
		var g *penGroup
		for _, cand := range groups {
			if cand.miss == c.ecfg.MissPenalty && cand.compose == c.ecfg.ComposePenalty {
				g = cand
				break
			}
		}
		if g == nil {
			g = &penGroup{miss: c.ecfg.MissPenalty, compose: c.ecfg.ComposePenalty}
			groups = append(groups, g)
		}
		g.idx = append(g.idx, i)
	}

	for _, g := range groups {
		cfgs := make([]cpu.Config, len(g.idx))
		for k, i := range g.idx {
			cfgs[k] = b.cells[i].ccfg
			cfgs[k].Ctx = j.ctx
		}
		results := cpu.RunSourceMany(tr.Replay(g.miss, g.compose), cfgs)
		for k, i := range g.idx {
			res := results[k]
			if errors.Is(res.Err, emu.ErrCancelled) {
				// The walk was cut short; every unemitted cell is aborted.
				err := context.Cause(j.ctx)
				if err == nil {
					err = res.Err
				}
				finish(err)
				return
			}
			c := b.cells[i]
			p := c.payload(res, es, tr.Excerpt(c.traceN))
			cell := BatchCell{Index: i, Outcome: "done", Result: p}
			if p.Trap != "" {
				cell.Outcome = "trapped"
				b.trapped++
				s.metrics.cellsTrapped.Add(1)
				s.metrics.trapped.Add(1)
			} else {
				b.done++
				s.metrics.cellsDone.Add(1)
				s.metrics.done.Add(1)
			}
			b.lines <- cell
		}
	}
	finish(nil)
}

// countingWriter tallies the bytes written through it, for the
// stream_bytes metric.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
