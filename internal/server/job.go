package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workload"
)

// MachineSpec selects the timing-model configuration of a job. Every field
// is timing-only: changing any of them leaves the dynamic instruction
// stream untouched, so two jobs that differ only here share one cached
// trace and differ only in how it is replayed.
type MachineSpec struct {
	Width     int    `json:"width,omitempty"`      // fetch/dispatch/commit width (default 4)
	ROB       int    `json:"rob,omitempty"`        // reorder buffer entries (default 128)
	PipeDepth int    `json:"pipe_depth,omitempty"` // front-end depth (default 12)
	DiseMode  string `json:"dise_mode,omitempty"`  // free (default), stall, pipe
	ICacheKB  int    `json:"icache_kb,omitempty"`  // 0 = default 32KB, -1 = perfect
	DCacheKB  int    `json:"dcache_kb,omitempty"`  // 0 = default 32KB, -1 = perfect
}

// EngineSpec sizes the DISE engine. Geometry and virtualization
// (PTEntries..RTPerfect) change which PT/RT events the fetch stream incurs
// and are therefore part of the job's cache key; the two penalties only
// scale recorded miss events at replay time and are not.
type EngineSpec struct {
	PTEntries      int  `json:"pt_entries,omitempty"`      // default 32
	RTEntries      int  `json:"rt_entries,omitempty"`      // default 2048
	RTAssoc        int  `json:"rt_assoc,omitempty"`        // default 2
	RTBlock        int  `json:"rt_block,omitempty"`        // default 1 inst/entry
	RTPerfect      bool `json:"rt_perfect,omitempty"`      // no RT misses
	MissPenalty    int  `json:"miss_penalty,omitempty"`    // default 30 cycles
	ComposePenalty int  `json:"compose_penalty,omitempty"` // default 150 cycles
}

// SubmitRequest is one simulation job. Exactly one program source must be
// given: EVR assembly text (Asm), a base64 EVRX image (ImageB64), or a
// built-in synthetic benchmark name (Bench).
type SubmitRequest struct {
	Asm      string `json:"asm,omitempty"`
	ImageB64 string `json:"image_b64,omitempty"`
	Bench    string `json:"bench,omitempty"`

	// Prods is an optional DISE production file installed before the run.
	Prods string `json:"prods,omitempty"`

	// Regs presets DISE dedicated registers before the run — the ACF setup
	// step (segment identifiers, handler addresses) that normally accompanies
	// a production install. Keys are dedicated-register spellings ("$dr0" ..
	// "$dr7"). Presets change the executed stream, so they are part of the
	// job's cache key.
	Regs map[string]uint64 `json:"regs,omitempty"`

	Machine MachineSpec `json:"machine"`
	Engine  EngineSpec  `json:"engine"`

	// BudgetInsts bounds the dynamic instruction count (0 = server default);
	// exhausting it ends the run with a budget trap. It truncates the
	// stream, so it is part of the cache key.
	BudgetInsts int64 `json:"budget_insts,omitempty"`
	// MaxCycles, when positive, arms the cycle-level watchdog. Such jobs run
	// live and bypass the trace cache: a watchdog kill depends on the timing
	// configuration, so the truncated stream is not reusable.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// TimeoutMS caps the job's wall-clock time (0 = server default, bounded
	// above by it).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Disasm asks for the program disassembly in the result.
	Disasm bool `json:"disasm,omitempty"`
	// TraceN asks for the first N records of the dynamic stream.
	TraceN int `json:"trace_n,omitempty"`
}

// EnginePayload reports the DISE engine counters of the functional run.
type EnginePayload struct {
	Fetched       int64   `json:"fetched"`
	Expansions    int64   `json:"expansions"`
	ExpansionRate float64 `json:"expansion_rate"`
	Inserted      int64   `json:"inserted"`
	PTMisses      int64   `json:"pt_misses"`
	RTMisses      int64   `json:"rt_misses"`
	Composed      int64   `json:"composed"`
}

// ResultPayload is the deterministic part of a job response: for a given
// request it is byte-identical whether the run was served live or from the
// trace cache (volatile fields — job id, latencies, the cached flag — live
// on the SubmitResponse envelope instead).
type ResultPayload struct {
	Cycles   int64   `json:"cycles"`
	Insts    int64   `json:"insts"`
	AppInsts int64   `json:"app_insts"`
	IPC      float64 `json:"ipc"`

	ICacheAccesses int64   `json:"icache_accesses"`
	ICacheMisses   int64   `json:"icache_misses"`
	ICacheMissRate float64 `json:"icache_miss_rate"`
	DCacheAccesses int64   `json:"dcache_accesses"`
	DCacheMisses   int64   `json:"dcache_misses"`
	DCacheMissRate float64 `json:"dcache_miss_rate"`

	Mispredicts int64 `json:"mispredicts"`
	DiseStalls  int64 `json:"dise_stalls"`
	ExpStalls   int64 `json:"exp_stalls"`

	Engine *EnginePayload `json:"engine,omitempty"`

	Output string `json:"output,omitempty"`
	// Trap and Error describe an abnormal architectural termination (budget
	// exhausted, ACF violation, ...). They are part of the simulation result,
	// not a transport failure: such jobs still answer 200.
	Trap  string `json:"trap,omitempty"`
	Error string `json:"error,omitempty"`

	Disasm string   `json:"disasm,omitempty"`
	Trace  []string `json:"trace,omitempty"`
}

// regInit is one validated dedicated-register preset, kept sorted by
// register so the cache key is order-independent.
type regInit struct {
	reg isa.Reg
	val uint64
}

// compiledJob is a validated, executable form of a SubmitRequest.
type compiledJob struct {
	prog  *program.Program
	image []byte // canonical EVRX serialization (cache key material)
	prods string
	regs  []regInit

	ecfg core.EngineConfig
	ccfg cpu.Config

	budget    int64
	maxCycles int64
	timeoutMS int64

	disasm bool
	traceN int

	key       cacheKey
	cacheable bool
}

// limits on request dimensions; all violations are 400s, not truncations.
const (
	maxWidth     = 64
	maxROB       = 1 << 14
	maxPipeDepth = 64
	maxCacheKB   = 1 << 14
	maxPTEntries = 1 << 12
	maxRTEntries = 1 << 20
	maxPenalty   = 1 << 20
	maxTraceN    = 1 << 16
	maxProdsLen  = 1 << 20
)

// compile validates req and resolves it against the server defaults. Every
// error it returns is a client error (HTTP 400).
func compile(req *SubmitRequest, defaultBudget int64) (*compiledJob, error) {
	j := &compiledJob{
		prods:     req.Prods,
		budget:    req.BudgetInsts,
		maxCycles: req.MaxCycles,
		timeoutMS: req.TimeoutMS,
		disasm:    req.Disasm,
		traceN:    req.TraceN,
	}
	if j.budget < 0 || j.maxCycles < 0 || j.timeoutMS < 0 || j.traceN < 0 {
		return nil, fmt.Errorf("budget_insts, max_cycles, timeout_ms and trace_n must be non-negative")
	}
	if j.budget == 0 {
		j.budget = defaultBudget
	}
	if j.traceN > maxTraceN {
		return nil, fmt.Errorf("trace_n %d exceeds the limit of %d", j.traceN, maxTraceN)
	}
	if len(j.prods) > maxProdsLen {
		return nil, fmt.Errorf("prods exceeds the %d-byte limit", maxProdsLen)
	}

	for name, val := range req.Regs {
		r := isa.RegByName(name, true)
		if !r.IsDedicated() {
			return nil, fmt.Errorf("regs: %q is not a dedicated register ($dr0..$dr%d)", name, isa.NumDiseRegs-1)
		}
		j.regs = append(j.regs, regInit{reg: r, val: val})
	}
	sort.Slice(j.regs, func(a, b int) bool { return j.regs[a].reg < j.regs[b].reg })
	for i := 1; i < len(j.regs); i++ {
		if j.regs[i].reg == j.regs[i-1].reg {
			return nil, fmt.Errorf("regs: %s given twice", j.regs[i].reg)
		}
	}

	if err := j.loadProgram(req); err != nil {
		return nil, err
	}
	var err error
	if j.ecfg, err = engineConfig(req.Engine); err != nil {
		return nil, err
	}
	if j.ccfg, err = cpuConfig(req.Machine); err != nil {
		return nil, err
	}
	j.ccfg.MaxCycles = j.maxCycles

	// Pre-validate the production file so a syntax error is a 400 at submit,
	// not a failed job: installs go onto a throwaway controller.
	if j.prods != "" {
		if _, err := core.NewController(j.ecfg).InstallFile(j.prods, nil); err != nil {
			return nil, fmt.Errorf("prods: %w", err)
		}
	}

	// A watchdog kill truncates the stream at a timing-dependent point, so
	// watchdogged jobs never share traces.
	j.cacheable = j.maxCycles == 0
	if j.cacheable {
		j.key = j.cacheKey()
	}
	return j, nil
}

// loadProgram resolves the job's program from exactly one of the three
// sources and pins its canonical image bytes.
func (j *compiledJob) loadProgram(req *SubmitRequest) error {
	n := 0
	for _, src := range []string{req.Asm, req.ImageB64, req.Bench} {
		if src != "" {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("give exactly one of asm, image_b64 or bench")
	}
	var err error
	switch {
	case req.Asm != "":
		if j.prog, err = asm.Assemble("job", req.Asm); err != nil {
			return fmt.Errorf("asm: %w", err)
		}
	case req.ImageB64 != "":
		raw, err := base64.StdEncoding.DecodeString(req.ImageB64)
		if err != nil {
			return fmt.Errorf("image_b64: %w", err)
		}
		if j.prog, err = program.ReadImage("job", bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("image_b64: %w", err)
		}
	default:
		p, ok := workload.ProfileByName(req.Bench)
		if !ok {
			return fmt.Errorf("unknown bench %q (choices: %s)", req.Bench, strings.Join(workload.Names(), ", "))
		}
		if j.prog, err = p.Generate(); err != nil {
			return fmt.Errorf("bench %q: %w", req.Bench, err)
		}
	}
	var buf bytes.Buffer
	if err := j.prog.WriteImage(&buf); err != nil {
		return fmt.Errorf("serializing program: %w", err)
	}
	j.image = buf.Bytes()
	return nil
}

// Config resolves the spec against the server defaults, exactly as job
// compilation does. Exported so clients deriving a MachineSpec from a local
// cpu.Config can verify the round trip instead of trusting an inversion.
func (s MachineSpec) Config() (cpu.Config, error) { return cpuConfig(s) }

// Config resolves the spec against the server defaults, exactly as job
// compilation does — the EngineSpec counterpart of MachineSpec.Config.
func (s EngineSpec) Config() (core.EngineConfig, error) { return engineConfig(s) }

func engineConfig(spec EngineSpec) (core.EngineConfig, error) {
	cfg := core.DefaultEngineConfig()
	set := func(dst *int, v, max int, name string) error {
		if v < 0 || v > max {
			return fmt.Errorf("engine.%s %d out of range [0, %d]", name, v, max)
		}
		if v > 0 {
			*dst = v
		}
		return nil
	}
	for _, f := range []struct {
		dst  *int
		v    int
		max  int
		name string
	}{
		{&cfg.PTEntries, spec.PTEntries, maxPTEntries, "pt_entries"},
		{&cfg.RTEntries, spec.RTEntries, maxRTEntries, "rt_entries"},
		{&cfg.RTAssoc, spec.RTAssoc, 64, "rt_assoc"},
		{&cfg.RTBlock, spec.RTBlock, 64, "rt_block"},
		{&cfg.MissPenalty, spec.MissPenalty, maxPenalty, "miss_penalty"},
		{&cfg.ComposePenalty, spec.ComposePenalty, maxPenalty, "compose_penalty"},
	} {
		if err := set(f.dst, f.v, f.max, f.name); err != nil {
			return cfg, err
		}
	}
	cfg.RTPerfect = spec.RTPerfect
	return cfg, nil
}

func cpuConfig(spec MachineSpec) (cpu.Config, error) {
	cfg := cpu.DefaultConfig()
	set := func(dst *int, v, max int, name string) error {
		if v < 0 || v > max {
			return fmt.Errorf("machine.%s %d out of range [0, %d]", name, v, max)
		}
		if v > 0 {
			*dst = v
		}
		return nil
	}
	if err := set(&cfg.Width, spec.Width, maxWidth, "width"); err != nil {
		return cfg, err
	}
	if err := set(&cfg.ROB, spec.ROB, maxROB, "rob"); err != nil {
		return cfg, err
	}
	if err := set(&cfg.PipeDepth, spec.PipeDepth, maxPipeDepth, "pipe_depth"); err != nil {
		return cfg, err
	}
	switch spec.DiseMode {
	case "", "free":
		cfg.DiseMode = cpu.DiseFree
	case "stall":
		cfg.DiseMode = cpu.DiseStall
	case "pipe":
		cfg.DiseMode = cpu.DisePipe
	default:
		return cfg, fmt.Errorf("machine.dise_mode %q is not free, stall or pipe", spec.DiseMode)
	}
	setCache := func(size *int, perfect *bool, kb int, name string) error {
		switch {
		case kb == 0: // default geometry
		case kb == -1:
			*perfect = true
		case kb > 0 && kb <= maxCacheKB && kb&(kb-1) == 0:
			*size = kb << 10
		default:
			return fmt.Errorf("machine.%s %d is not -1, 0 or a power of two <= %d", name, kb, maxCacheKB)
		}
		return nil
	}
	if err := setCache(&cfg.Mem.IL1.Size, &cfg.Mem.IL1.Perfect, spec.ICacheKB, "icache_kb"); err != nil {
		return cfg, err
	}
	if err := setCache(&cfg.Mem.DL1.Size, &cfg.Mem.DL1.Perfect, spec.DCacheKB, "dcache_kb"); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// cacheKey hashes every stream-changing dimension of the job — the program's
// canonical image bytes, the production text, the dedicated-register
// presets, the instruction budget, and the engine geometry/virtualization —
// exactly the equivalence-class key of the experiment scheduler, made
// content-addressed. Timing knobs (machine spec, DISE mode, penalties,
// deadlines) are deliberately absent: jobs that differ only there replay
// one shared capture.
func (j *compiledJob) cacheKey() cacheKey {
	h := sha256.New()
	h.Write([]byte("disesrvd-trace-v2\x00"))
	var num [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(num[:], uint64(v))
		h.Write(num[:])
	}
	wi(j.budget)
	wi(int64(len(j.regs)))
	for _, ri := range j.regs {
		wi(int64(ri.reg))
		wi(int64(ri.val))
	}
	wi(int64(j.ecfg.PTEntries))
	if j.ecfg.RTPerfect {
		wi(-1)
		wi(-1)
	} else {
		wi(int64(j.ecfg.RTEntries))
		wi(int64(j.ecfg.RTAssoc))
	}
	wi(int64(j.ecfg.RTBlock))
	wi(int64(len(j.prods)))
	h.Write([]byte(j.prods))
	wi(int64(len(j.image)))
	h.Write(j.image)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// machine builds a freshly prepared functional machine for the job, with
// the production set installed when one was given. The returned controller
// is nil for production-free jobs.
func (j *compiledJob) machine() (*emu.Machine, *core.Controller) {
	m := emu.New(j.prog)
	if j.budget > 0 {
		m.SetBudget(j.budget)
	}
	for _, ri := range j.regs {
		m.SetReg(ri.reg, ri.val)
	}
	if j.prods == "" {
		return m, nil
	}
	ctrl := core.NewController(j.ecfg)
	if _, err := ctrl.InstallFile(j.prods, nil); err != nil {
		// compile pre-validated the text against the same engine config.
		panic(fmt.Sprintf("server: production set failed revalidation: %v", err))
	}
	m.SetExpander(ctrl.Engine())
	return m, ctrl
}

// payload renders the deterministic result body from the timed run, the
// functional engine counters, and the request's optional extras.
func (j *compiledJob) payload(res *cpu.Result, es core.EngineStats, excerpt []cpu.Rec) *ResultPayload {
	p := &ResultPayload{
		Cycles:         res.Cycles,
		Insts:          res.Insts,
		AppInsts:       res.AppInsts,
		IPC:            res.IPC(),
		ICacheAccesses: res.ICacheAccesses,
		ICacheMisses:   res.ICacheMisses,
		ICacheMissRate: rate(res.ICacheMisses, res.ICacheAccesses),
		DCacheAccesses: res.DCacheAccesses,
		DCacheMisses:   res.DCacheMisses,
		DCacheMissRate: rate(res.DCacheMisses, res.DCacheAccesses),
		Mispredicts:    res.Mispredicts,
		DiseStalls:     res.DiseStalls,
		ExpStalls:      res.ExpStalls,
		Output:         res.Output,
	}
	if j.prods != "" {
		p.Engine = &EnginePayload{
			Fetched:       es.Fetched,
			Expansions:    es.Expansions,
			ExpansionRate: es.ExpansionRate(),
			Inserted:      es.Inserted,
			PTMisses:      es.PTMisses,
			RTMisses:      es.RTMisses,
			Composed:      es.Composed,
		}
	}
	if res.Err != nil {
		p.Error = res.Err.Error()
		if t, ok := res.Err.(*emu.Trap); ok {
			p.Trap = t.Kind.String()
		}
	}
	if j.disasm {
		p.Disasm = asm.Disassemble(j.prog)
	}
	for _, r := range excerpt {
		p.Trace = append(p.Trace, formatRec(&r))
	}
	return p
}

func rate(miss, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(miss) / float64(total)
}

// formatRec renders one dynamic-stream record for the trace excerpt.
func formatRec(r *cpu.Rec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%08x:%d %v", r.PC, r.DISEPC, r.Op)
	if r.Flags&cpu.RecIsApp == 0 {
		b.WriteString(" [rt]")
	}
	if r.Flags&cpu.RecMispredict != 0 {
		b.WriteString(" [mispredict]")
	}
	if r.Flags&cpu.RecPTMiss != 0 {
		b.WriteString(" [pt-miss]")
	}
	if r.Flags&cpu.RecRTMiss != 0 {
		b.WriteString(" [rt-miss]")
	}
	return b.String()
}
