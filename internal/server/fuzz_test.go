package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

var fuzzSrv struct {
	once sync.Once
	ts   *httptest.Server
}

// fuzzServer is one shared small server: one worker, tiny budgets and
// deadlines, so even a fuzz input that decodes to a runnable job costs
// milliseconds.
func fuzzServer() *httptest.Server {
	fuzzSrv.once.Do(func() {
		s, err := New(Config{
			Workers:        1,
			QueueDepth:     4,
			DefaultBudget:  10_000,
			DefaultTimeout: 250 * time.Millisecond,
			Log:            slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			panic(err)
		}
		fuzzSrv.ts = httptest.NewServer(s.Handler())
	})
	return fuzzSrv.ts
}

// FuzzSubmitRequest drives the JSON job decoder and the compile path with
// arbitrary bytes: any input must produce an orderly HTTP status — never a
// panic, never a 5xx other than the deadline statuses.
func FuzzSubmitRequest(f *testing.F) {
	seed := func(v *SubmitRequest) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"porgram": 1}`))
	f.Add([]byte(`{"asm": "halt"}`))
	f.Add(seed(SmokeRequest()))
	f.Add(seed(&SubmitRequest{Bench: "gzip", BudgetInsts: 1000}))
	f.Add(seed(&SubmitRequest{Asm: "bogus", Machine: MachineSpec{Width: -3, ICacheKB: 7}}))
	f.Add(seed(&SubmitRequest{ImageB64: "AAAA", Engine: EngineSpec{RTEntries: 1 << 30}}))
	f.Add(seed(&SubmitRequest{Asm: ".entry main\nmain:\n    br zero, main\n", BudgetInsts: 1 << 50, TimeoutMS: 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		ts := fuzzServer()
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestTimeout,
			http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	})
}
