package server

// The smoke fixtures tie the serving layer to the repository's golden
// numbers: SmokeAsm/SmokeProds are the quickstart example's program and
// store-counting production set, and SmokeWant pins the headline result
// under the default machine and engine configuration — the same numbers
// examples/quickstart's golden test pins via internal/goldentest. The
// server tests, `make serve-smoke` (cmd/servesmoke) and the README curl
// examples all submit exactly this job, so a drift in any layer fails
// against one shared truth.

// SmokeAsm is the quickstart program: four stores in a counted loop.
const SmokeAsm = `
.entry main
.data
buf: .space 64
.text
main:
    la r1, buf
    li r2, 4
loop:
    stq r2, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

// SmokeProds counts every store in dedicated register $dr0.
const SmokeProds = `
prod count_stores {
    match class == store
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}
`

// SmokeWant pins the smoke job's headline numbers (kept equal to the
// quickstart golden in examples/quickstart/main_test.go).
var SmokeWant = struct {
	Cycles, Insts, Mispredicts, DiseStalls int64
}{Cycles: 193, Insts: 24, Mispredicts: 3, DiseStalls: 30}

// SmokeRequest returns the canonical smoke submission: the quickstart
// program and productions under an all-default configuration.
func SmokeRequest() *SubmitRequest {
	return &SubmitRequest{Asm: SmokeAsm, Prods: SmokeProds}
}
