// Package rec defines the timing model's native dynamic-instruction record:
// the subset of the emulator's DynInst annotations the scheduling loop
// actually reads, packed into 32 bytes, with register operands and
// functional-unit latencies predecoded per opcode.
//
// It is a leaf package (it imports only internal/isa) so that both producers
// of records — the functional emulator's translated fast path, which emits
// records directly from superblock templates, and the interpreter-side
// converter in internal/cpu — share one layout and one set of predecode
// tables. internal/cpu aliases these types, so its consumers (trace codec,
// server cache, experiments) are untouched.
package rec

import "repro/internal/isa"

// Rec is one dynamic instruction in the timing model's native form
// (immediates, for instance, never affect timing and are dropped). Recorded
// streams (internal/trace) store Recs verbatim and replay hands them out by
// reference, so replay throughput is bounded by the scheduler, not by record
// reassembly or memory traffic.
//
// Register operands are stored predecoded: the opcode's operand-slot mapping
// (RegSel) is resolved once, so SrcA/SrcB/Dst are the scheduler's two source
// registers and destination directly, and Lat is the opcode's
// functional-unit latency.
type Rec struct {
	PC        uint64 // byte address; replacement instructions carry the trigger's
	MemAddr   uint64
	DISEPC    int32
	SeqLen    int32      // replacement sequence length (trigger record only)
	FetchSize uint8      // text-image bytes this fetch consumed (0 for spliced records)
	Op        isa.Opcode // uint8: the full opcode space fits
	SrcA      isa.Reg    // scheduler source operands (NoReg when absent);
	SrcB      isa.Reg    // out-of-file values mean always-ready (fault-corrupted
	Dst       isa.Reg    // encodings degrade, they do not crash the host)
	Lat       uint8      // functional-unit latency in cycles
	Flags     uint16
}

// Rec flags. PTMiss/RTMiss/Composed carry the DISE table events so a
// recorded stream can rebuild stall cycles under any penalty assignment;
// Mispredict is the branch predictor's verdict, resolved by the source.
const (
	IsApp uint16 = 1 << iota
	IsBranch
	Taken
	IsLoad
	IsStore
	PTMiss
	RTMiss
	Composed
	Mispredict
)

// SelEnt maps one opcode's operand slots: each field indexes a caller-built
// [4]isa.Reg{RS, RT, RD, NoReg} vector, so slot 3 means "no operand".
type SelEnt struct{ A, B, D uint8 }

// SelAllNone indexes every operand at the trailing NoReg slot: used for
// opcodes outside the table (fault-corrupted encodings).
var SelAllNone = SelEnt{A: 3, B: 3, D: 3}

// RegSel maps opcode → which Inst fields the scheduler reads as sources and
// destination. The register slot an operand occupies is a pure function of
// the opcode (see the isa.Inst field slot mapping), so the per-record
// format/class switches in Inst.SourceRegs and Inst.Dest fold into one
// table, built at init by decoding each opcode once with sentinel register
// numbers and recording which slots come back.
var RegSel = func() (t [isa.NumOpcodes]SelEnt) {
	slot := func(r isa.Reg) uint8 {
		switch r {
		case 1:
			return 0 // RS
		case 2:
			return 1 // RT
		case 3:
			return 2 // RD
		}
		return 3 // none
	}
	for op := range t {
		probe := isa.Inst{Op: isa.Opcode(op), RS: 1, RT: 2, RD: 3}
		a, b := probe.SourceRegs()
		t[op] = SelEnt{A: slot(a), B: slot(b), D: slot(probe.Dest())}
	}
	return
}()

// Sel returns the operand-slot mapping for op, degrading to SelAllNone for
// out-of-table opcodes.
func Sel(op isa.Opcode) SelEnt {
	if int(op) < len(RegSel) {
		return RegSel[op]
	}
	return SelAllNone
}

// LatencyTable holds per-opcode functional-unit latencies in cycles, indexed
// directly by opcode: multiplies take 3, loads take 0 (the D-cache latency
// is added by the scheduler), everything else 1.
var LatencyTable = func() [isa.NumOpcodes]int8 {
	var t [isa.NumOpcodes]int8
	for op := range t {
		t[op] = 1
	}
	t[isa.OpMULQ] = 3
	t[isa.OpMULQI] = 3
	t[isa.OpLDQ] = 0
	t[isa.OpLDL] = 0
	return t
}()

// Lat gives the functional-unit latency of op in cycles.
func Lat(op isa.Opcode) uint8 {
	if int(op) < len(LatencyTable) {
		return uint8(LatencyTable[op])
	}
	return 1
}
