// Package rewrite is the static binary rewriting infrastructure used by the
// software ACF baselines the paper compares DISE against (§4.1): it inserts
// instruction sequences before selected instructions, optionally replaces
// the originals, relocates the text, and re-resolves every branch
// displacement and symbol. The memory-fault-isolation rewriter itself lives
// in internal/acf/mfi; this package provides the generic transformation.
package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

// SymRef marks a branch inside inserted code whose displacement must be
// resolved to a symbol after relocation.
type SymRef struct {
	Index  int    // instruction index within the insertion
	Symbol string // target text symbol
}

// Insertion describes one edit: Insts are placed immediately before the
// original unit At; if Replace is non-nil it substitutes the original
// instruction (e.g. to redirect a checked memory access through a scavenged
// register). Syms publishes new symbols at offsets within the insertion
// (e.g. inline trap stations other insertions branch to).
type Insertion struct {
	At      int
	Insts   []isa.Inst
	Refs    []SymRef
	Replace *isa.Inst
	Syms    map[string]int
}

// Edit is a full rewriting request: per-unit insertions plus appended code
// (error handlers, stubs) published under new symbols.
type Edit struct {
	Insertions []Insertion
	// Append adds instructions at the end of the text under the given
	// symbols (offset within the appended block -> symbol name).
	Append     []isa.Inst
	AppendSyms map[string]int
	AppendRefs []SymRef
	// Prologue is inserted before the entry point (e.g. to initialize the
	// scavenged segment-identifier register).
	Prologue []isa.Inst
}

// Apply rewrites p according to e, returning a new program. The original is
// not modified.
func Apply(p *program.Program, e *Edit) (*program.Program, error) {
	ins := append([]Insertion(nil), e.Insertions...)
	sort.SliceStable(ins, func(i, j int) bool { return ins[i].At < ins[j].At })
	for i, in := range ins {
		if in.At < 0 || in.At >= p.NumUnits() {
			return nil, fmt.Errorf("rewrite: insertion %d out of range (unit %d)", i, in.At)
		}
		if i > 0 && ins[i-1].At == in.At {
			return nil, fmt.Errorf("rewrite: duplicate insertion at unit %d", in.At)
		}
	}
	if len(e.Prologue) > 0 {
		for _, in := range ins {
			if in.At == p.Entry {
				return nil, fmt.Errorf("rewrite: prologue collides with insertion at entry unit %d", p.Entry)
			}
		}
		ins = append(ins, Insertion{At: p.Entry, Insts: e.Prologue})
		sort.SliceStable(ins, func(i, j int) bool { return ins[i].At < ins[j].At })
	}

	q := &program.Program{
		Name:    p.Name,
		Data:    append([]byte(nil), p.Data...),
		Symbols: make(map[string]int, len(p.Symbols)+len(e.AppendSyms)),
	}

	// Pass 1: lay out the new text, recording old-unit -> new-unit.
	newIndex := make([]int, p.NumUnits()+1)
	type pendingRef struct {
		unit int
		sym  string
	}
	var refs []pendingRef
	k := 0
	insSyms := map[string]int{}
	for i := 0; i < p.NumUnits(); i++ {
		newIndex[i] = k
		if idx := findInsertion(ins, i); idx >= 0 {
			in := ins[idx]
			for sym, off := range in.Syms {
				insSyms[sym] = k + off
			}
			for j, inst := range in.Insts {
				q.Text = append(q.Text, inst)
				for _, r := range in.Refs {
					if r.Index == j {
						refs = append(refs, pendingRef{unit: k, sym: r.Symbol})
					}
				}
				k++
			}
			// The insertion point (where execution of the edited region
			// begins) is the first inserted instruction, but branch targets
			// must point there too, so newIndex[i] stays at the insertion.
			if in.Replace != nil {
				q.Text = append(q.Text, *in.Replace)
			} else {
				q.Text = append(q.Text, p.Text[i])
			}
			k++
			continue
		}
		q.Text = append(q.Text, p.Text[i])
		k++
	}
	newIndex[p.NumUnits()] = k

	appendBase := k
	for j, inst := range e.Append {
		q.Text = append(q.Text, inst)
		for _, r := range e.AppendRefs {
			if r.Index == j {
				refs = append(refs, pendingRef{unit: appendBase + j, sym: r.Symbol})
			}
		}
	}

	// Pass 2: symbols and entry.
	for sym, u := range p.Symbols {
		q.Symbols[sym] = newIndex[u]
	}
	for sym, off := range e.AppendSyms {
		if _, dup := q.Symbols[sym]; dup {
			return nil, fmt.Errorf("rewrite: appended symbol %q already defined", sym)
		}
		q.Symbols[sym] = appendBase + off
	}
	for sym, u := range insSyms {
		if _, dup := q.Symbols[sym]; dup {
			return nil, fmt.Errorf("rewrite: insertion symbol %q already defined", sym)
		}
		q.Symbols[sym] = u
	}
	q.Entry = newIndex[p.Entry]

	// Pass 3: re-resolve branch displacements of original instructions.
	// Inserted instructions use either local displacements (kept verbatim)
	// or symbol refs (resolved below).
	for oldI := 0; oldI < p.NumUnits(); oldI++ {
		in := p.Text[oldI]
		if !in.Op.IsBranch() {
			continue
		}
		oldT := p.BranchTargetUnit(oldI)
		if oldT < 0 || oldT > p.NumUnits() {
			return nil, fmt.Errorf("rewrite: unit %d branch target %d out of range", oldI, oldT)
		}
		newI := newIndex[oldI] + insertedBefore(ins, oldI)
		q.SetBranchTarget(newI, newIndex[oldT])
	}
	for _, r := range refs {
		t, ok := q.Symbols[r.sym]
		if !ok {
			return nil, fmt.Errorf("rewrite: unresolved symbol %q", r.sym)
		}
		if !q.Text[r.unit].Op.IsBranch() {
			return nil, fmt.Errorf("rewrite: symbol ref on non-branch at unit %d", r.unit)
		}
		q.SetBranchTarget(r.unit, t)
	}

	q.Invalidate()
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("rewrite: %w", err)
	}
	return q, nil
}

// insertedBefore returns the number of instructions inserted before old unit
// i's own instruction (i.e. the offset of the original instruction within
// its edited region).
func insertedBefore(ins []Insertion, oldI int) int {
	if idx := findInsertion(ins, oldI); idx >= 0 {
		return len(ins[idx].Insts)
	}
	return 0
}

func findInsertion(ins []Insertion, at int) int {
	lo, hi := 0, len(ins)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ins[mid].At == at:
			return mid
		case ins[mid].At < at:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}
