package rewrite

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
)

const src = `
.entry main
.data
buf: .space 64
.text
main:
    li r2, 5
    la r1, buf
loop:
    stq r2, 0(r1)
    subqi r2, 1, r2
    bgt r2, loop
    ldq r1, 0(r1)
    sys 2
    halt
`

func nopInst() isa.Inst { return isa.Nop() }

func TestApplyNoEdits(t *testing.T) {
	p := asm.MustAssemble("t", src)
	q, err := Apply(p, &Edit{})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumUnits() != p.NumUnits() {
		t.Errorf("units changed: %d -> %d", p.NumUnits(), q.NumUnits())
	}
	m := emu.New(q)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "1" {
		t.Errorf("output = %q", m.Output())
	}
}

func TestInsertionPreservesSemantics(t *testing.T) {
	p := asm.MustAssemble("t", src)
	store := p.Symbols["loop"]
	q, err := Apply(p, &Edit{Insertions: []Insertion{
		{At: store, Insts: []isa.Inst{nopInst(), nopInst()}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumUnits() != p.NumUnits()+2 {
		t.Errorf("units = %d", q.NumUnits())
	}
	m := emu.New(q)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "1" {
		t.Errorf("output = %q, want 1", m.Output())
	}
	// The backward branch must now target the first inserted instruction.
	bgt := q.Symbols["loop"]
	if q.Text[bgt].Op != isa.OpBIS {
		t.Errorf("loop symbol should point at inserted code, got %v", q.Text[bgt])
	}
}

func TestReplaceOriginal(t *testing.T) {
	p := asm.MustAssemble("t", `
.entry main
main:
    li r1, 1
    sys 2
    halt
`)
	repl := isa.Inst{Op: isa.OpLDA, RD: 1, RS: isa.RegZero, RT: isa.NoReg, Imm: 7}
	q, err := Apply(p, &Edit{Insertions: []Insertion{
		{At: 0, Insts: []isa.Inst{nopInst()}, Replace: &repl},
	}})
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(q)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "7" {
		t.Errorf("output = %q, want 7", m.Output())
	}
}

func TestAppendAndSymRef(t *testing.T) {
	p := asm.MustAssemble("t", `
.entry main
main:
    li r1, 3
    beq r31, done     ; always taken (zero reg) -> rewritten to handler
done:
    sys 2
    halt
`)
	// Insert a branch to an appended handler before the beq.
	q, err := Apply(p, &Edit{
		Insertions: []Insertion{{
			At: 1,
			Insts: []isa.Inst{
				{Op: isa.OpBR, RD: isa.RegZero, RS: isa.NoReg, RT: isa.NoReg, Imm: 0},
			},
			Refs: []SymRef{{Index: 0, Symbol: "handler"}},
		}},
		Append: []isa.Inst{
			{Op: isa.OpLDA, RD: 1, RS: isa.RegZero, RT: isa.NoReg, Imm: 42},
			{Op: isa.OpSYS, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg, Imm: isa.SysPutInt},
			{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
		},
		AppendSyms: map[string]int{"handler": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(q)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "42" {
		t.Errorf("output = %q, want 42", m.Output())
	}
}

func TestPrologueRunsFirst(t *testing.T) {
	p := asm.MustAssemble("t", `
.entry main
main:
    sys 2
    halt
`)
	q, err := Apply(p, &Edit{Prologue: []isa.Inst{
		{Op: isa.OpLDA, RD: 1, RS: isa.RegZero, RT: isa.NoReg, Imm: 9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(q)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "9" {
		t.Errorf("output = %q, want 9", m.Output())
	}
}

func TestErrors(t *testing.T) {
	p := asm.MustAssemble("t", src)
	if _, err := Apply(p, &Edit{Insertions: []Insertion{{At: -1}}}); err == nil {
		t.Error("negative insertion should fail")
	}
	if _, err := Apply(p, &Edit{Insertions: []Insertion{
		{At: 0, Insts: []isa.Inst{nopInst()}},
		{At: 0, Insts: []isa.Inst{nopInst()}},
	}}); err == nil {
		t.Error("duplicate insertion should fail")
	}
	if _, err := Apply(p, &Edit{Insertions: []Insertion{{
		At:    0,
		Insts: []isa.Inst{nopInst()},
		Refs:  []SymRef{{Index: 0, Symbol: "nowhere"}},
	}}}); err == nil {
		t.Error("unresolved symbol should fail")
	}
}

func TestManyInsertionsBranchFixup(t *testing.T) {
	// Insert before every store in a multi-branch program; all branch
	// displacements must survive.
	p := asm.MustAssemble("t", `
.entry main
.data
b: .space 256
.text
main:
    li r2, 10
    la r1, b
loop:
    stq r2, 0(r1)
    andi r2, 1, r3
    beq r3, even
    stq r3, 8(r1)
even:
    subqi r2, 1, r2
    bgt r2, loop
    sys 2
    halt
`)
	var ins []Insertion
	for i, in := range p.Text {
		if in.Op.Class() == isa.ClassStore {
			ins = append(ins, Insertion{At: i, Insts: []isa.Inst{nopInst(), nopInst(), nopInst()}})
		}
	}
	q, err := Apply(p, &Edit{Insertions: ins})
	if err != nil {
		t.Fatal(err)
	}
	m0 := emu.New(p)
	if err := m0.Run(); err != nil {
		t.Fatal(err)
	}
	m1 := emu.New(q)
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	if m0.Output() != m1.Output() {
		t.Errorf("outputs diverge: %q vs %q", m0.Output(), m1.Output())
	}
}
