package mem

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 16B lines = 128 bytes.
	return NewCache(CacheConfig{Name: "t", Size: 128, LineSize: 16, Assoc: 2})
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x100) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access should hit")
	}
	if !c.Access(0x10f) {
		t.Error("same line should hit")
	}
	if c.Access(0x110) {
		t.Error("next line should miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestAssociativityAndLRU(t *testing.T) {
	c := smallCache()
	// Three lines mapping to the same set (stride = sets*line = 64).
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a)
	c.Access(b)
	if !c.Access(a) || !c.Access(b) {
		t.Fatal("two-way set should hold two lines")
	}
	c.Access(d) // evicts LRU = a
	if c.Access(a) {
		t.Error("a should have been evicted")
	}
	// Now a evicted b (LRU after d touched), i.e. b misses.
	if c.Access(b) {
		t.Error("b should have been evicted by a's refill")
	}
}

func TestPerfectCacheNeverMisses(t *testing.T) {
	c := NewCache(CacheConfig{Name: "p", Perfect: true})
	for i := 0; i < 1000; i++ {
		if !c.Access(uint64(i) * 4096) {
			t.Fatal("perfect cache missed")
		}
	}
	if c.Stats.Misses != 0 {
		t.Error("perfect cache recorded misses")
	}
}

func TestAccessRangeSpanning(t *testing.T) {
	c := smallCache()
	// A 4-byte access straddling a 16-byte boundary touches two lines.
	if got := c.AccessRange(14, 4); got != 2 {
		t.Errorf("straddling cold access misses = %d, want 2", got)
	}
	if got := c.AccessRange(14, 4); got != 0 {
		t.Errorf("straddling warm access misses = %d, want 0", got)
	}
	if got := c.AccessRange(32, 2); got != 1 {
		t.Errorf("contained cold access misses = %d, want 1", got)
	}
}

func TestFlush(t *testing.T) {
	c := smallCache()
	c.Access(0)
	c.Flush()
	if c.Access(0) {
		t.Error("flushed line should miss")
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []CacheConfig{
		{Name: "b1", Size: 100, LineSize: 16, Assoc: 2}, // not divisible
		{Name: "b2", Size: 0, LineSize: 16, Assoc: 1},
		{Name: "b3", Size: 128, LineSize: 0, Assoc: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", cfg)
		}
	}
	good := CacheConfig{Name: "g", Size: 32 << 10, LineSize: 64, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsProperty(t *testing.T) {
	// Any working set no larger than the cache, walked repeatedly with
	// line-stride accesses, incurs only cold misses.
	f := func(nLines uint8) bool {
		n := int(nLines)%8 + 1 // 1..8 lines, cache holds 8
		c := smallCache()
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < n; i++ {
				c.Access(uint64(i * 16))
			}
		}
		return c.Stats.Misses == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set of 3 lines per 2-way set thrashes under LRU.
	c := smallCache()
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 3; i++ {
			c.Access(uint64(i * 64)) // all map to set 0
		}
	}
	if c.Stats.Misses != 30 {
		t.Errorf("LRU thrash misses = %d, want 30", c.Stats.Misses)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	// Cold fetch: IL1 miss + L2 miss.
	lat := h.FetchLatency(0x1000, 4)
	if lat != cfg.L2Latency+cfg.MemLatency {
		t.Errorf("cold fetch latency = %d", lat)
	}
	// Warm fetch: hit.
	if lat := h.FetchLatency(0x1000, 4); lat != 0 {
		t.Errorf("warm fetch latency = %d", lat)
	}
	// IL1 eviction later would hit in L2: force by flushing IL1 only.
	h.IL1.Flush()
	if lat := h.FetchLatency(0x1000, 4); lat != cfg.L2Latency {
		t.Errorf("L2-hit fetch latency = %d", lat)
	}
	// Data: cold miss then hit.
	if lat := h.DataLatency(0x8000_0000); lat != cfg.L1Latency+cfg.L2Latency+cfg.MemLatency {
		t.Errorf("cold data latency = %d", lat)
	}
	if lat := h.DataLatency(0x8000_0000); lat != cfg.L1Latency {
		t.Errorf("warm data latency = %d", lat)
	}
}

func TestByteGranularityFootprint(t *testing.T) {
	// 2-byte codewords pack twice as many instructions per line: walking N
	// "instructions" of 2 bytes misses half as often as 4-byte ones.
	c4 := NewCache(CacheConfig{Name: "a", Size: 1 << 10, LineSize: 64, Assoc: 2})
	c2 := NewCache(CacheConfig{Name: "b", Size: 1 << 10, LineSize: 64, Assoc: 2})
	n := 4096
	for i := 0; i < n; i++ {
		c4.AccessRange(uint64(i*4), 4)
		c2.AccessRange(uint64(i*2), 2)
	}
	if c2.Stats.Misses*2 != c4.Stats.Misses {
		t.Errorf("2-byte misses = %d, 4-byte = %d; want exactly half",
			c2.Stats.Misses, c4.Stats.Misses)
	}
}
