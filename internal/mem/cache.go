// Package mem models the on-chip memory hierarchy: set-associative LRU
// caches with configurable geometry, composed into the split-L1 / unified-L2
// hierarchy the paper simulates (32KB I, 32KB D, 1MB L2). The instruction
// cache is accessed at byte granularity so that compressed images — 2-byte
// dedicated codewords in particular — genuinely improve line utilization.
package mem

import "fmt"

// CacheConfig describes one cache.
type CacheConfig struct {
	Name     string
	Size     int  // total bytes; 0 with Perfect set means "always hits"
	LineSize int  // bytes per line
	Assoc    int  // ways per set
	Perfect  bool // model an infinite cache (the paper's "perfect" points)
}

// Validate checks the geometry.
func (c *CacheConfig) Validate() error {
	if c.Perfect {
		return nil
	}
	if c.LineSize <= 0 || c.Size <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("mem: cache %s: bad geometry %+v", c.Name, *c)
	}
	sets := c.Size / (c.LineSize * c.Assoc)
	if sets <= 0 || c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("mem: cache %s: size %d not divisible into %d-byte %d-way sets",
			c.Name, c.Size, c.LineSize, c.Assoc)
	}
	return nil
}

// CacheStats counts accesses.
type CacheStats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses per access.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	valid bool
	tag   uint64
	lru   int64
}

// Cache is a set-associative LRU cache (tags only; data is never stored —
// the functional simulator owns values).
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine
	clock int64

	Stats CacheStats
}

// NewCache builds a cache; it panics on invalid geometry (configuration is
// programmer error, not runtime input).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg}
	if !cfg.Perfect {
		n := cfg.Size / (cfg.LineSize * cfg.Assoc)
		c.sets = make([][]cacheLine, n)
		for i := range c.sets {
			c.sets[i] = make([]cacheLine, cfg.Assoc)
		}
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up addr, filling on miss. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Stats.Accesses++
	if c.cfg.Perfect {
		return true
	}
	c.clock++
	tag := addr / uint64(c.cfg.LineSize)
	set := c.sets[tag%uint64(len(c.sets))]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			return true
		}
	}
	c.Stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheLine{valid: true, tag: tag, lru: c.clock}
	return false
}

// AccessRange looks up every line covering [addr, addr+size). It returns the
// number of misses (a fetch spanning a line boundary can miss twice).
func (c *Cache) AccessRange(addr uint64, size int) int {
	if size <= 0 {
		size = 1
	}
	if c.cfg.Perfect {
		c.Stats.Accesses++
		return 0
	}
	misses := 0
	first := addr / uint64(c.cfg.LineSize)
	last := (addr + uint64(size) - 1) / uint64(c.cfg.LineSize)
	for line := first; line <= last; line++ {
		if !c.Access(line * uint64(c.cfg.LineSize)) {
			misses++
		}
	}
	return misses
}

// Flush invalidates all lines (statistics are preserved).
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = cacheLine{}
		}
	}
}

// Hierarchy is the two-level hierarchy of the paper's simulator: split L1
// instruction/data caches over a unified L2 over main memory.
type Hierarchy struct {
	IL1, DL1, L2 *Cache

	L1Latency  int // cycles for an L1 hit beyond the pipelined access
	L2Latency  int // additional cycles for an L1 miss / L2 hit
	MemLatency int // additional cycles for an L2 miss
}

// HierarchyConfig configures a Hierarchy.
type HierarchyConfig struct {
	IL1, DL1, L2 CacheConfig
	L1Latency    int
	L2Latency    int
	MemLatency   int
}

// DefaultHierarchyConfig is the paper's memory system: 32KB 2-way L1s with
// 64B lines, a 1MB 4-way unified L2.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		IL1:        CacheConfig{Name: "il1", Size: 32 << 10, LineSize: 64, Assoc: 2},
		DL1:        CacheConfig{Name: "dl1", Size: 32 << 10, LineSize: 64, Assoc: 2},
		L2:         CacheConfig{Name: "l2", Size: 1 << 20, LineSize: 128, Assoc: 4},
		L1Latency:  1,
		L2Latency:  12,
		MemLatency: 100,
	}
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		IL1:        NewCache(cfg.IL1),
		DL1:        NewCache(cfg.DL1),
		L2:         NewCache(cfg.L2),
		L1Latency:  cfg.L1Latency,
		L2Latency:  cfg.L2Latency,
		MemLatency: cfg.MemLatency,
	}
}

// FetchLatency performs an instruction fetch of size bytes at addr and
// returns the added latency beyond a pipelined L1 hit (0 on full hit).
func (h *Hierarchy) FetchLatency(addr uint64, size int) int {
	misses := h.IL1.AccessRange(addr, size)
	if misses == 0 {
		return 0
	}
	lat := 0
	for i := 0; i < misses; i++ {
		if h.L2.Access(addr) {
			lat += h.L2Latency
		} else {
			lat += h.L2Latency + h.MemLatency
		}
	}
	return lat
}

// DataLatency performs a data access at addr and returns its total latency
// in cycles (L1Latency on a hit).
func (h *Hierarchy) DataLatency(addr uint64) int {
	if h.DL1.Access(addr) {
		return h.L1Latency
	}
	if h.L2.Access(addr) {
		return h.L1Latency + h.L2Latency
	}
	return h.L1Latency + h.L2Latency + h.MemLatency
}
