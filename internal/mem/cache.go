// Package mem models the on-chip memory hierarchy: set-associative LRU
// caches with configurable geometry, composed into the split-L1 / unified-L2
// hierarchy the paper simulates (32KB I, 32KB D, 1MB L2). The instruction
// cache is accessed at byte granularity so that compressed images — 2-byte
// dedicated codewords in particular — genuinely improve line utilization.
package mem

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrConfig wraps every cache-geometry validation error, so callers of the
// Checked constructors can classify bad configuration with errors.Is.
var ErrConfig = errors.New("mem: bad cache config")

// CacheConfig describes one cache.
type CacheConfig struct {
	Name     string
	Size     int  // total bytes; 0 with Perfect set means "always hits"
	LineSize int  // bytes per line
	Assoc    int  // ways per set
	Perfect  bool // model an infinite cache (the paper's "perfect" points)
}

// Validate checks the geometry.
func (c *CacheConfig) Validate() error {
	if c.Perfect {
		return nil
	}
	if c.LineSize <= 0 || c.Size <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("%w: cache %s: bad geometry %+v", ErrConfig, c.Name, *c)
	}
	sets := c.Size / (c.LineSize * c.Assoc)
	if sets <= 0 || c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("%w: cache %s: size %d not divisible into %d-byte %d-way sets",
			ErrConfig, c.Name, c.Size, c.LineSize, c.Assoc)
	}
	return nil
}

// CacheStats counts accesses.
type CacheStats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses per access.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// cacheLine is one tag-array entry. lru doubles as the valid bit: the access
// clock is strictly greater than the cache's validity base for every live
// stamp, so lru <= base means the line is empty. A fresh cache has base 0 and
// all-zero stamps; Reset raises base to the current clock, invalidating every
// line in O(1) without touching the tag array.
type cacheLine struct {
	tag uint64
	lru int64
}

// Cache is a set-associative LRU cache (tags only; data is never stored —
// the functional simulator owns values). The tag array is one flat slice —
// set s occupies lines[s*assoc : (s+1)*assoc] — so building a cache is a
// single allocation regardless of geometry.
type Cache struct {
	cfg   CacheConfig
	lines []cacheLine
	assoc int
	nsets int
	clock int64
	base  int64 // validity epoch: only stamps > base are live

	// Shift/mask fast path: real cache geometries are powers of two, so the
	// tag and set computations are a shift and an AND instead of an integer
	// divide on the hot path. lineShift is -1 when LineSize is not a power
	// of two; setMask is 0 (with setPow2 false) when the set count is not.
	lineShift int
	setPow2   bool
	setMask   uint64

	// Same-line memo: the tag of the most recent resident access. A repeat
	// of that tag with nothing in between must hit (the line cannot have
	// been evicted) and its skipped LRU update cannot reorder any victim
	// choice (no other line was touched since), so Access short-circuits the
	// set scan. Memo hits do not advance the LRU clock either: they re-stamp
	// nothing, and skipping the tick preserves the strictly monotone stamp
	// order of all non-memo touches, so every future victim choice is
	// unchanged. memoLo/memoLen describe the memoized line's byte-address
	// range [memoLo, memoLo+memoLen) so the Hierarchy fast paths test
	// containment with one wraparound compare and no tag computation; an
	// invalid memo is {1, 0}, which no in-range access satisfies (perfect
	// caches stay there forever). The memo invalidates whenever tags change
	// underneath (Flush, FlipTagBit).
	memoValid bool
	memoTag   uint64
	memoLo    uint64
	memoLen   uint64

	Stats CacheStats
}

// NewCache builds a cache; it panics on invalid geometry. The panic marks a
// programmer error (a hard-coded configuration in tests or experiments);
// code taking configuration from external input must use NewCacheChecked.
func NewCache(cfg CacheConfig) *Cache {
	c, err := NewCacheChecked(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NewCacheChecked builds a cache, returning an ErrConfig-wrapped error on
// invalid geometry.
func NewCacheChecked(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, lineShift: -1, memoLo: 1}
	if !cfg.Perfect {
		n := cfg.Size / (cfg.LineSize * cfg.Assoc)
		c.nsets = n
		c.assoc = cfg.Assoc
		c.lines = make([]cacheLine, n*cfg.Assoc)
		if ls := cfg.LineSize; ls&(ls-1) == 0 {
			c.lineShift = bits.TrailingZeros(uint(ls))
		}
		if n&(n-1) == 0 {
			c.setPow2 = true
			c.setMask = uint64(n - 1)
		}
	}
	return c, nil
}

// setMemo memoizes tag as the most recent resident line.
func (c *Cache) setMemo(tag uint64) {
	c.memoValid, c.memoTag = true, tag
	if c.lineShift >= 0 {
		c.memoLo = tag << uint(c.lineShift)
	} else {
		c.memoLo = tag * uint64(c.cfg.LineSize)
	}
	c.memoLen = uint64(c.cfg.LineSize)
}

// clearMemo invalidates the memo (the empty range matches no address).
func (c *Cache) clearMemo() {
	c.memoValid = false
	c.memoLo, c.memoLen = 1, 0
}

// lineTag maps addr to its line-granularity tag.
func (c *Cache) lineTag(addr uint64) uint64 {
	if c.lineShift >= 0 {
		return addr >> uint(c.lineShift)
	}
	return addr / uint64(c.cfg.LineSize)
}

// setFor selects the set a tag indexes.
func (c *Cache) setFor(tag uint64) []cacheLine {
	var s uint64
	if c.setPow2 {
		s = tag & c.setMask
	} else {
		s = tag % uint64(c.nsets)
	}
	i := int(s) * c.assoc
	return c.lines[i : i+c.assoc]
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up addr, filling on miss. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	if c.cfg.Perfect {
		c.Stats.Accesses++
		return true
	}
	tag := c.lineTag(addr)
	if c.memoValid && tag == c.memoTag {
		c.Stats.Accesses++
		return true
	}
	return c.accessTag(tag)
}

// accessTag is Access for a precomputed line tag (never called on perfect
// caches).
func (c *Cache) accessTag(tag uint64) bool {
	c.Stats.Accesses++
	if c.memoValid && tag == c.memoTag {
		return true
	}
	c.clock++
	set := c.setFor(tag)
	for i := range set {
		if set[i].lru > c.base && set[i].tag == tag {
			set[i].lru = c.clock
			c.setMemo(tag)
			return true
		}
	}
	c.Stats.Misses++
	victim := 0
	for i := range set {
		if set[i].lru <= c.base {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, lru: c.clock}
	c.setMemo(tag)
	return false
}

// AccessRange looks up every line covering [addr, addr+size). It returns the
// number of misses (a fetch spanning a line boundary can miss twice).
func (c *Cache) AccessRange(addr uint64, size int) int {
	if size <= 0 {
		size = 1
	}
	if c.cfg.Perfect {
		c.Stats.Accesses++
		return 0
	}
	first := c.lineTag(addr)
	last := c.lineTag(addr + uint64(size) - 1)
	if first == last {
		// The overwhelmingly common case: a fetch within one line, usually
		// the same line as the previous fetch.
		if c.memoValid && first == c.memoTag {
			c.Stats.Accesses++
			return 0
		}
		if c.accessTag(first) {
			return 0
		}
		return 1
	}
	misses := 0
	for line := first; line <= last; line++ {
		if !c.accessTag(line) {
			misses++
		}
	}
	return misses
}

// ValidLines returns the number of currently valid lines (set-major order is
// used to index them for FlipTagBit). Fault injectors use it to pick a
// corruption target; perfect caches hold no state and report 0.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].lru > c.base {
			n++
		}
	}
	return n
}

// FlipTagBit flips one bit of the n-th valid line's tag (set-major order),
// modeling a soft error in the tag array. Because this cache stores tags
// only — the functional simulator owns all values — the corruption perturbs
// timing (spurious misses/false hits), never correctness. It reports whether
// a line was corrupted.
func (c *Cache) FlipTagBit(n int, bit uint) bool {
	for i := range c.lines {
		if c.lines[i].lru <= c.base {
			continue
		}
		if n == 0 {
			c.lines[i].tag ^= 1 << (bit & 63)
			c.clearMemo()
			return true
		}
		n--
	}
	return false
}

// Flush invalidates all lines (statistics are preserved). It is O(1): the
// validity base is raised past every live stamp instead of clearing the tag
// array.
func (c *Cache) Flush() {
	c.clearMemo()
	c.base = c.clock
}

// Reset returns the cache to its just-constructed observable state — no
// valid lines, zero statistics, empty memo — without reallocating or
// clearing the tag array, so a pooled cache can be reused with the cost of
// three scalar stores. The LRU clock keeps running: replacement decisions
// depend only on the relative order of stamps within a run, which a strictly
// monotone clock preserves across reuses.
func (c *Cache) Reset() {
	c.clearMemo()
	c.base = c.clock
	c.Stats = CacheStats{}
}

// Hierarchy is the two-level hierarchy of the paper's simulator: split L1
// instruction/data caches over a unified L2 over main memory.
type Hierarchy struct {
	IL1, DL1, L2 *Cache

	L1Latency  int // cycles for an L1 hit beyond the pipelined access
	L2Latency  int // additional cycles for an L1 miss / L2 hit
	MemLatency int // additional cycles for an L2 miss
}

// HierarchyConfig configures a Hierarchy.
type HierarchyConfig struct {
	IL1, DL1, L2 CacheConfig
	L1Latency    int
	L2Latency    int
	MemLatency   int
}

// DefaultHierarchyConfig is the paper's memory system: 32KB 2-way L1s with
// 64B lines, a 1MB 4-way unified L2.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		IL1:        CacheConfig{Name: "il1", Size: 32 << 10, LineSize: 64, Assoc: 2},
		DL1:        CacheConfig{Name: "dl1", Size: 32 << 10, LineSize: 64, Assoc: 2},
		L2:         CacheConfig{Name: "l2", Size: 1 << 20, LineSize: 128, Assoc: 4},
		L1Latency:  1,
		L2Latency:  12,
		MemLatency: 100,
	}
}

// NewHierarchy builds the hierarchy; it panics on invalid geometry (see
// NewCache). Code taking configuration from external input must use
// NewHierarchyChecked.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h, err := NewHierarchyChecked(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// NewHierarchyChecked builds the hierarchy, returning an ErrConfig-wrapped
// error on invalid geometry.
func NewHierarchyChecked(cfg HierarchyConfig) (*Hierarchy, error) {
	il1, err := NewCacheChecked(cfg.IL1)
	if err != nil {
		return nil, err
	}
	dl1, err := NewCacheChecked(cfg.DL1)
	if err != nil {
		return nil, err
	}
	l2, err := NewCacheChecked(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		IL1:        il1,
		DL1:        dl1,
		L2:         l2,
		L1Latency:  cfg.L1Latency,
		L2Latency:  cfg.L2Latency,
		MemLatency: cfg.MemLatency,
	}, nil
}

// Reset returns every level to its just-constructed observable state (see
// Cache.Reset); the latency parameters are untouched. Timing loops pool
// hierarchies across runs — tag arrays are the simulator's largest
// allocations — and Reset is what makes a pooled hierarchy indistinguishable
// from a fresh one.
func (h *Hierarchy) Reset() {
	h.IL1.Reset()
	h.DL1.Reset()
	h.L2.Reset()
}

// FetchHit performs an instruction fetch of size bytes at addr when it lands
// inside the memoized resident I-cache line, and reports whether it did.
// Straight-line fetch hits the same line as its predecessor almost always,
// and this check is small enough to inline into the timing loop; a false
// return has performed nothing and must be followed by FetchMiss.
func (h *Hierarchy) FetchHit(addr uint64, size int) bool {
	c := h.IL1
	if addr-c.memoLo+uint64(size) <= c.memoLen {
		c.Stats.Accesses++
		return true
	}
	return false
}

// FetchMemo exposes the memoized resident I-cache line as a byte range
// [lo, lo+size): the tightest timing loops hoist the bounds into registers,
// test hits themselves, and credit them in bulk through AddFetchAccesses.
// Any FetchMiss re-memoizes, invalidating previously read bounds.
func (h *Hierarchy) FetchMemo() (lo, size uint64) { return h.IL1.memoLo, h.IL1.memoLen }

// AddFetchAccesses credits n batched memo-hit fetches (see FetchMemo).
func (h *Hierarchy) AddFetchAccesses(n int64) { h.IL1.Stats.Accesses += n }

// DataMemo exposes the memoized resident D-cache line as a byte range; the
// counterpart of FetchMemo for the data port, invalidated by any DataMiss.
func (h *Hierarchy) DataMemo() (lo, size uint64) { return h.DL1.memoLo, h.DL1.memoLen }

// AddDataAccesses credits n batched memo-hit data accesses (see DataMemo).
func (h *Hierarchy) AddDataAccesses(n int64) { h.DL1.Stats.Accesses += n }

// FetchLatency performs an instruction fetch of size bytes at addr and
// returns the added latency beyond a pipelined L1 hit (0 on full hit).
func (h *Hierarchy) FetchLatency(addr uint64, size int) int {
	if h.FetchHit(addr, size) {
		return 0
	}
	return h.FetchMiss(addr, size)
}

// FetchMiss is the fetch path for accesses outside the memoized line: the
// full I-cache lookup, walking into L2 and memory on misses. It returns the
// added latency beyond a pipelined L1 hit.
func (h *Hierarchy) FetchMiss(addr uint64, size int) int {
	misses := h.IL1.AccessRange(addr, size)
	if misses == 0 {
		return 0
	}
	lat := 0
	for i := 0; i < misses; i++ {
		if h.L2.Access(addr) {
			lat += h.L2Latency
		} else {
			lat += h.L2Latency + h.MemLatency
		}
	}
	return lat
}

// DataHit performs a data access at addr when it lands inside the memoized
// resident D-cache line, and reports whether it did (the hit costs
// L1Latency). Like FetchHit it inlines into the timing loop; a false return
// has performed nothing and must be followed by DataMiss.
func (h *Hierarchy) DataHit(addr uint64) bool {
	c := h.DL1
	if addr-c.memoLo < c.memoLen {
		c.Stats.Accesses++
		return true
	}
	return false
}

// DataLatency performs a data access at addr and returns its total latency
// in cycles (L1Latency on a hit).
func (h *Hierarchy) DataLatency(addr uint64) int {
	if h.DataHit(addr) {
		return h.L1Latency
	}
	return h.DataMiss(addr)
}

// DataMiss is the data path for accesses outside the memoized line: the full
// D-cache lookup, walking into L2 and memory on misses. It returns the total
// latency in cycles.
func (h *Hierarchy) DataMiss(addr uint64) int {
	if h.DL1.Access(addr) {
		return h.L1Latency
	}
	if h.L2.Access(addr) {
		return h.L1Latency + h.L2Latency
	}
	return h.L1Latency + h.L2Latency + h.MemLatency
}
