package dise

// One benchmark per graph of the paper's evaluation (Figures 6, 7, 8; the
// paper has no numbered result tables — its simulator configuration table
// is encoded in cpu.DefaultConfig). Each bench regenerates the figure's
// series on a reduced benchmark set so `go test -bench=.` stays tractable;
// `go run ./cmd/disebench` produces the full-scale tables recorded in
// EXPERIMENTS.md.

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/experiments"
)

// benchOptions keeps testing.B runs fast: three benchmarks spanning the
// code-size range, at reduced dynamic length.
func benchOptions() experiments.Options {
	return experiments.Options{
		Benchmarks: []string{"bzip2", "gzip", "mcf"},
		DynScaleK:  60,
	}
}

func BenchmarkFig6Formulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6Formulation(benchOptions())
		sink = t.Get("gmean", "DISE3")
	}
}

func BenchmarkFig6CacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6CacheSize(benchOptions())
		sink = t.Get("gmean", "dise-8K")
	}
}

func BenchmarkFig6Width(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6Width(benchOptions())
		sink = t.Get("gmean", "dise-8w")
	}
}

func BenchmarkFig7Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text, _ := experiments.Fig7Compression(benchOptions())
		sink = text.Get("gmean", "DISE")
	}
}

func BenchmarkFig7Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7Performance(benchOptions())
		sink = t.Get("gmean", "dise-8K")
	}
}

func BenchmarkFig7RTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7RTSize(benchOptions())
		sink = t.Get("gmean", "512-dm")
	}
}

func BenchmarkFig8Combos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig8Combos(benchOptions())
		sink = t.Get("gmean", "dise+dise-32K")
	}
}

func BenchmarkFig8RT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig8RT(benchOptions())
		sink = t.Get("gmean", "512-dm-150")
	}
}

// Component microbenchmarks: the performance-critical paths of the
// simulator itself.

func BenchmarkEngineExpand(b *testing.B) {
	ctrl := NewController(DefaultEngineConfig())
	if _, err := ctrl.InstallFile(`
prod p {
    match class == store
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        jne  $dr1, ($dr7)
        %insn
    }
}
`, nil); err != nil {
		b.Fatal(err)
	}
	prog := MustAssemble("b", ".entry main\nmain:\n stq r1, 0(sp)\n halt\n")
	store := prog.Text[0]
	e := ctrl.Engine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp := e.Expand(store, 0x1000)
		if exp == nil {
			b.Fatal("no expansion")
		}
	}
}

func BenchmarkEmulator(b *testing.B) {
	src := `
.entry main
main:
    li r2, 1000
loop:
    addqi r3, 1, r3
    xor r3, r4, r4
    subqi r2, 1, r2
    bgt r2, loop
    halt
`
	prog := MustAssemble("b", src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(prog)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(m.Stats.Total)
	}
}

func BenchmarkCycleSim(b *testing.B) {
	src := `
.entry main
.data
buf: .space 8192
.text
main:
    la r1, buf
    li r2, 1000
loop:
    ldq r3, 0(r1)
    addqi r3, 1, r3
    stq r3, 0(r1)
    addqi r1, 8, r1
    andi r1, 8191, r4
    subqi r2, 1, r2
    bgt r2, loop
    halt
`
	prog := MustAssemble("b", src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(NewMachine(prog), DefaultCPUConfig())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// Translation-path microbenchmarks: TranslateCold measures the translator
// itself — every iteration compiles ~1K units of straight-line code that then
// executes exactly once, so nothing amortizes — and SuperblockDispatch
// measures steady-state threaded dispatch over a hot loop whose superblock is
// translated once and reused for the whole run.

func BenchmarkTranslateCold(b *testing.B) {
	var src strings.Builder
	src.WriteString(".entry main\nmain:\n")
	for i := 0; i < 1024; i++ {
		src.WriteString(" addqi r3, 1, r3\n")
	}
	src.WriteString(" halt\n")
	prog := MustAssemble("cold", src.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(prog)
		m.SetTranslate(emu.TranslateAlways, 0)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		if translated, _ := m.TranslateCounts(); translated == 0 {
			b.Fatal("translation never engaged")
		}
	}
}

func BenchmarkSuperblockDispatch(b *testing.B) {
	src := `
.entry main
main:
    li r2, 10000
loop:
    addqi r3, 1, r3
    xor r3, r4, r4
    slli r3, 3, r5
    subqi r2, 1, r2
    bgt r2, loop
    halt
`
	prog := MustAssemble("dispatch", src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(prog)
		m.SetTranslate(emu.TranslateAlways, 0)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(m.Stats.Total)
	}
}

var sink float64

func BenchmarkAblationRTPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationRTPenalty(benchOptions())
		sink = t.Get("gmean", "150cy")
	}
}

func BenchmarkAblationEngineMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationEngineMode(benchOptions())
		sink = t.Get("gmean", "+pipe")
	}
}

func BenchmarkAblationRTBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationRTBlock(benchOptions())
		sink = t.Get("gmean", "block4")
	}
}
